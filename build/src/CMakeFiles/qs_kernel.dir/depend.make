# Empty dependencies file for qs_kernel.
# This may be replaced when dependencies are built.
