file(REMOVE_RECURSE
  "CMakeFiles/qs_kernel.dir/kernel/gso.cpp.o"
  "CMakeFiles/qs_kernel.dir/kernel/gso.cpp.o.d"
  "CMakeFiles/qs_kernel.dir/kernel/nic.cpp.o"
  "CMakeFiles/qs_kernel.dir/kernel/nic.cpp.o.d"
  "CMakeFiles/qs_kernel.dir/kernel/os_model.cpp.o"
  "CMakeFiles/qs_kernel.dir/kernel/os_model.cpp.o.d"
  "CMakeFiles/qs_kernel.dir/kernel/qdisc.cpp.o"
  "CMakeFiles/qs_kernel.dir/kernel/qdisc.cpp.o.d"
  "CMakeFiles/qs_kernel.dir/kernel/qdisc_etf.cpp.o"
  "CMakeFiles/qs_kernel.dir/kernel/qdisc_etf.cpp.o.d"
  "CMakeFiles/qs_kernel.dir/kernel/qdisc_fifo.cpp.o"
  "CMakeFiles/qs_kernel.dir/kernel/qdisc_fifo.cpp.o.d"
  "CMakeFiles/qs_kernel.dir/kernel/qdisc_fq.cpp.o"
  "CMakeFiles/qs_kernel.dir/kernel/qdisc_fq.cpp.o.d"
  "CMakeFiles/qs_kernel.dir/kernel/qdisc_fq_codel.cpp.o"
  "CMakeFiles/qs_kernel.dir/kernel/qdisc_fq_codel.cpp.o.d"
  "CMakeFiles/qs_kernel.dir/kernel/qdisc_netem.cpp.o"
  "CMakeFiles/qs_kernel.dir/kernel/qdisc_netem.cpp.o.d"
  "CMakeFiles/qs_kernel.dir/kernel/qdisc_tbf.cpp.o"
  "CMakeFiles/qs_kernel.dir/kernel/qdisc_tbf.cpp.o.d"
  "CMakeFiles/qs_kernel.dir/kernel/timer_service.cpp.o"
  "CMakeFiles/qs_kernel.dir/kernel/timer_service.cpp.o.d"
  "CMakeFiles/qs_kernel.dir/kernel/udp_socket.cpp.o"
  "CMakeFiles/qs_kernel.dir/kernel/udp_socket.cpp.o.d"
  "libqs_kernel.a"
  "libqs_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qs_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
