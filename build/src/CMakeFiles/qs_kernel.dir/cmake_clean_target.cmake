file(REMOVE_RECURSE
  "libqs_kernel.a"
)
