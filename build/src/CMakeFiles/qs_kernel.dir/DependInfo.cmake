
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/gso.cpp" "src/CMakeFiles/qs_kernel.dir/kernel/gso.cpp.o" "gcc" "src/CMakeFiles/qs_kernel.dir/kernel/gso.cpp.o.d"
  "/root/repo/src/kernel/nic.cpp" "src/CMakeFiles/qs_kernel.dir/kernel/nic.cpp.o" "gcc" "src/CMakeFiles/qs_kernel.dir/kernel/nic.cpp.o.d"
  "/root/repo/src/kernel/os_model.cpp" "src/CMakeFiles/qs_kernel.dir/kernel/os_model.cpp.o" "gcc" "src/CMakeFiles/qs_kernel.dir/kernel/os_model.cpp.o.d"
  "/root/repo/src/kernel/qdisc.cpp" "src/CMakeFiles/qs_kernel.dir/kernel/qdisc.cpp.o" "gcc" "src/CMakeFiles/qs_kernel.dir/kernel/qdisc.cpp.o.d"
  "/root/repo/src/kernel/qdisc_etf.cpp" "src/CMakeFiles/qs_kernel.dir/kernel/qdisc_etf.cpp.o" "gcc" "src/CMakeFiles/qs_kernel.dir/kernel/qdisc_etf.cpp.o.d"
  "/root/repo/src/kernel/qdisc_fifo.cpp" "src/CMakeFiles/qs_kernel.dir/kernel/qdisc_fifo.cpp.o" "gcc" "src/CMakeFiles/qs_kernel.dir/kernel/qdisc_fifo.cpp.o.d"
  "/root/repo/src/kernel/qdisc_fq.cpp" "src/CMakeFiles/qs_kernel.dir/kernel/qdisc_fq.cpp.o" "gcc" "src/CMakeFiles/qs_kernel.dir/kernel/qdisc_fq.cpp.o.d"
  "/root/repo/src/kernel/qdisc_fq_codel.cpp" "src/CMakeFiles/qs_kernel.dir/kernel/qdisc_fq_codel.cpp.o" "gcc" "src/CMakeFiles/qs_kernel.dir/kernel/qdisc_fq_codel.cpp.o.d"
  "/root/repo/src/kernel/qdisc_netem.cpp" "src/CMakeFiles/qs_kernel.dir/kernel/qdisc_netem.cpp.o" "gcc" "src/CMakeFiles/qs_kernel.dir/kernel/qdisc_netem.cpp.o.d"
  "/root/repo/src/kernel/qdisc_tbf.cpp" "src/CMakeFiles/qs_kernel.dir/kernel/qdisc_tbf.cpp.o" "gcc" "src/CMakeFiles/qs_kernel.dir/kernel/qdisc_tbf.cpp.o.d"
  "/root/repo/src/kernel/timer_service.cpp" "src/CMakeFiles/qs_kernel.dir/kernel/timer_service.cpp.o" "gcc" "src/CMakeFiles/qs_kernel.dir/kernel/timer_service.cpp.o.d"
  "/root/repo/src/kernel/udp_socket.cpp" "src/CMakeFiles/qs_kernel.dir/kernel/udp_socket.cpp.o" "gcc" "src/CMakeFiles/qs_kernel.dir/kernel/udp_socket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
