file(REMOVE_RECURSE
  "CMakeFiles/qs_framework.dir/framework/aggregate.cpp.o"
  "CMakeFiles/qs_framework.dir/framework/aggregate.cpp.o.d"
  "CMakeFiles/qs_framework.dir/framework/artifacts.cpp.o"
  "CMakeFiles/qs_framework.dir/framework/artifacts.cpp.o.d"
  "CMakeFiles/qs_framework.dir/framework/duel.cpp.o"
  "CMakeFiles/qs_framework.dir/framework/duel.cpp.o.d"
  "CMakeFiles/qs_framework.dir/framework/experiment.cpp.o"
  "CMakeFiles/qs_framework.dir/framework/experiment.cpp.o.d"
  "CMakeFiles/qs_framework.dir/framework/report.cpp.o"
  "CMakeFiles/qs_framework.dir/framework/report.cpp.o.d"
  "CMakeFiles/qs_framework.dir/framework/runner.cpp.o"
  "CMakeFiles/qs_framework.dir/framework/runner.cpp.o.d"
  "CMakeFiles/qs_framework.dir/framework/topology.cpp.o"
  "CMakeFiles/qs_framework.dir/framework/topology.cpp.o.d"
  "libqs_framework.a"
  "libqs_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qs_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
