file(REMOVE_RECURSE
  "libqs_framework.a"
)
