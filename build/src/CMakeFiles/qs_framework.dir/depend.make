# Empty dependencies file for qs_framework.
# This may be replaced when dependencies are built.
