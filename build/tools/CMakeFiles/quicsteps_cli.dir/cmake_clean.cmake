file(REMOVE_RECURSE
  "CMakeFiles/quicsteps_cli.dir/quicsteps_cli.cpp.o"
  "CMakeFiles/quicsteps_cli.dir/quicsteps_cli.cpp.o.d"
  "quicsteps_cli"
  "quicsteps_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quicsteps_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
