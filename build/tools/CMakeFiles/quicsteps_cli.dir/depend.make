# Empty dependencies file for quicsteps_cli.
# This may be replaced when dependencies are built.
