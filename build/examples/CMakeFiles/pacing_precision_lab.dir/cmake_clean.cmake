file(REMOVE_RECURSE
  "CMakeFiles/pacing_precision_lab.dir/pacing_precision_lab.cpp.o"
  "CMakeFiles/pacing_precision_lab.dir/pacing_precision_lab.cpp.o.d"
  "pacing_precision_lab"
  "pacing_precision_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacing_precision_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
