# Empty compiler generated dependencies file for pacing_precision_lab.
# This may be replaced when dependencies are built.
