# Empty compiler generated dependencies file for qdisc_shootout.
# This may be replaced when dependencies are built.
