file(REMOVE_RECURSE
  "CMakeFiles/qdisc_shootout.dir/qdisc_shootout.cpp.o"
  "CMakeFiles/qdisc_shootout.dir/qdisc_shootout.cpp.o.d"
  "qdisc_shootout"
  "qdisc_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdisc_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
