// Extension: network-condition sweep (paper Section 3.4 limitations). The
// paper fixes 40 Mbit/s x 40 ms and explicitly leaves other conditions to
// future work; this bench checks whether its headline orderings survive
// across bandwidths and RTTs.
#include "bench_common.hpp"

using namespace quicsteps;
using namespace quicsteps::bench;

int main() {
  print_header("extC", "network-condition sweep (paper future work)");

  struct NetPoint {
    const char* label;
    std::int64_t mbps;
    sim::Duration rtt;
  };
  const NetPoint points[] = {
      {"10 Mbit / 40 ms", 10, sim::Duration::millis(40)},
      {"40 Mbit / 40 ms", 40, sim::Duration::millis(40)},
      {"100 Mbit / 40 ms", 100, sim::Duration::millis(40)},
      {"40 Mbit / 10 ms", 40, sim::Duration::millis(10)},
      {"40 Mbit / 100 ms", 40, sim::Duration::millis(100)},
  };
  const framework::StackKind stacks[] = {
      framework::StackKind::kQuicheSf, framework::StackKind::kPicoquic,
      framework::StackKind::kNgtcp2, framework::StackKind::kTcpTls};

  // Build the whole (network x stack) grid up front so every run fans out
  // across the worker pool at once, then print in grid order.
  std::vector<framework::ExperimentConfig> grid;
  for (const auto& point : points) {
    for (auto stack : stacks) {
      auto config = base_config(framework::to_string(stack));
      config.stack = stack;
      config.repetitions = std::min(config.repetitions, 3);
      config.topology.bottleneck_rate =
          net::DataRate::megabits_per_second(point.mbps);
      config.topology.path_delay_one_way =
          point.rtt / 2;
      // Scale the bottleneck buffer with the BDP, as the paper's setup did.
      config.topology.bottleneck_buffer_bytes =
          net::DataRate::megabits_per_second(point.mbps)
              .bytes_in(point.rtt);
      grid.push_back(config);
    }
  }
  const auto aggregates = run_grid(grid);

  std::printf("%-18s %-12s %10s %14s %10s\n", "network", "stack", "goodput",
              "pkts in <=5", "drops");
  std::printf("%s\n", std::string(70, '-').c_str());
  std::size_t row = 0;
  for (const auto& point : points) {
    for ([[maybe_unused]] auto stack : stacks) {
      const auto& agg = aggregates[row++];
      std::printf("%-18s %-12s %7.2f Mb %13.1f%% %10.1f\n", point.label,
                  agg.label.c_str(), agg.goodput_mbps.mean,
                  100.0 * agg.fraction_in_trains_up_to(5),
                  agg.dropped_packets.mean);
    }
    std::printf("\n");
  }

  print_paper_note(
      "Section 3.4 — 'the exact findings are specific to these fixed "
      "parameters... general trends and differences in behavior are visible "
      "and explainable with the implementations.' Expected: train-length "
      "signatures (ngtcp2/TCP short, picoquic bucket bursts) persist across "
      "conditions; ngtcp2's flow-control ceiling binds harder at higher "
      "bandwidth-delay products.");
  return 0;
}
