// Reproduces Table 1: goodput and dropped packets for the baseline
// (default qdisc, CUBIC, no GSO) across quiche, picoquic, ngtcp2, TCP/TLS.
#include "bench_common.hpp"

using namespace quicsteps;
using namespace quicsteps::bench;

int main() {
  print_header("tab1", "baseline goodput and dropped packets (Table 1)");

  const framework::StackKind stacks[] = {
      framework::StackKind::kQuiche, framework::StackKind::kPicoquic,
      framework::StackKind::kNgtcp2, framework::StackKind::kTcpTls};

  std::vector<framework::Aggregate> rows;
  for (auto stack : stacks) {
    auto config = base_config(framework::to_string(stack));
    config.stack = stack;
    config.cca = cc::CcAlgorithm::kCubic;
    rows.push_back(run(config));
  }

  std::fputs(framework::render_goodput_table(
                 rows, "Baseline: dropped packets and goodput")
                 .c_str(),
             stdout);

  print_paper_note(
      "Table 1 — quiche 687.15±338.12 dropped / 34.67±0.64 Mbit/s; picoquic "
      "861.45±99.53 / 37.09±0.03; ngtcp2 503.45±7.39 / 15.93±0.00; TCP/TLS "
      "16.50±0.67 / 37.37±0.02. Shape targets: ngtcp2 goodput lowest and "
      "most stable; TCP/TLS drops an order of magnitude below the QUIC "
      "stacks; quiche shows the largest variance (rollback churn).");
  return 0;
}
