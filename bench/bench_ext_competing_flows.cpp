// Extension: competing flows at the shared bottleneck (paper Section 3.4
// future work). Two senders share the 40 Mbit/s link; we measure who wins,
// how fair the split is, and what pacing does to total loss.
#include "bench_common.hpp"

#include "framework/duel.hpp"

using namespace quicsteps;
using namespace quicsteps::bench;

namespace {

framework::ExperimentConfig contender(framework::StackKind stack,
                                      cc::CcAlgorithm cca,
                                      framework::QdiscKind qdisc,
                                      std::int64_t payload) {
  framework::ExperimentConfig config;
  config.label = framework::to_string(stack);
  config.stack = stack;
  config.cca = cca;
  config.topology.server_qdisc = qdisc;
  config.payload_bytes = payload;
  return config;
}

}  // namespace

int main() {
  print_header("extD", "competing flows at the bottleneck (future work)");

  const std::int64_t payload = framework::env_payload_bytes();

  struct Matchup {
    const char* label;
    framework::ExperimentConfig a;
    framework::ExperimentConfig b;
  };
  const Matchup matchups[] = {
      {"quiche vs quiche (no qdisc)",
       contender(framework::StackKind::kQuicheSf, cc::CcAlgorithm::kCubic,
                 framework::QdiscKind::kFqCodel, payload),
       contender(framework::StackKind::kQuicheSf, cc::CcAlgorithm::kCubic,
                 framework::QdiscKind::kFqCodel, payload)},
      {"quiche vs quiche (both FQ)",
       contender(framework::StackKind::kQuicheSf, cc::CcAlgorithm::kCubic,
                 framework::QdiscKind::kFq, payload),
       contender(framework::StackKind::kQuicheSf, cc::CcAlgorithm::kCubic,
                 framework::QdiscKind::kFq, payload)},
      {"picoquic vs TCP/TLS",
       contender(framework::StackKind::kPicoquic, cc::CcAlgorithm::kCubic,
                 framework::QdiscKind::kFqCodel, payload),
       contender(framework::StackKind::kTcpTls, cc::CcAlgorithm::kCubic,
                 framework::QdiscKind::kFqCodel, payload)},
      {"picoquic-BBR vs TCP/TLS",
       contender(framework::StackKind::kPicoquic, cc::CcAlgorithm::kBbr,
                 framework::QdiscKind::kFqCodel, payload),
       contender(framework::StackKind::kTcpTls, cc::CcAlgorithm::kCubic,
                 framework::QdiscKind::kFqCodel, payload)},
      {"quiche-FQ vs quiche-noqdisc",
       contender(framework::StackKind::kQuicheSf, cc::CcAlgorithm::kCubic,
                 framework::QdiscKind::kFq, payload),
       contender(framework::StackKind::kQuicheSf, cc::CcAlgorithm::kCubic,
                 framework::QdiscKind::kFqCodel, payload)},
  };

  // Duels are independent simulations; fan the matchup list out across the
  // worker pool and print in input order.
  std::vector<framework::DuelConfig> duels;
  for (const auto& matchup : matchups) {
    framework::DuelConfig duel;
    duel.a = matchup.a;
    duel.b = matchup.b;
    duel.seed = 7;
    duels.push_back(duel);
  }
  const auto results = framework::ParallelRunner().run_duels(duels);

  std::printf("%-30s %10s %10s %10s %10s\n", "matchup", "A [Mb]", "B [Mb]",
              "fairness", "drops");
  std::printf("%s\n", std::string(76, '-').c_str());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& result = results[i];
    std::printf("%-30s %10.2f %10.2f %10.3f %10lld\n", matchups[i].label,
                result.a.goodput.goodput.mbps(),
                result.b.goodput.goodput.mbps(), result.fairness,
                static_cast<long long>(result.bottleneck_drops));
  }

  print_paper_note(
      "Section 3.4 — competing flows are exactly what the paper excludes "
      "for reproducibility and defers to future work. Expected shapes: "
      "same-stack pairs split near-fairly (index ~1); paced senders lose "
      "fewer packets than unpaced ones at the same bottleneck; BBR vs "
      "loss-based shows the well-known aggression mismatch.");
  return 0;
}
