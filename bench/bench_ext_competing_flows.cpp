// Extension: competing flows at the shared bottleneck (paper Section 3.4
// future work). Two senders share the 40 Mbit/s link; we measure who wins,
// how fair the split is, and what pacing does to total loss. `--flows N`
// scales the duels up to N-sender fabrics over the same bottleneck; from
// N=64 the bench switches to fabric-scale mode — homogeneous ideal-pacing
// fleets on a capacity-scaled bottleneck (per-flow fair share held
// constant as N grows), reporting Jain's index and the per-flow drop
// attribution instead of the stack matchup tables. `--flows 10000` is the
// 10k-flow scale point and completes on one core.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "bench_common.hpp"

#include "framework/duel.hpp"

using namespace quicsteps;
using namespace quicsteps::bench;

namespace {

framework::ExperimentConfig contender(framework::StackKind stack,
                                      cc::CcAlgorithm cca,
                                      framework::QdiscKind qdisc,
                                      std::int64_t payload) {
  framework::ExperimentConfig config;
  config.label = framework::to_string(stack);
  config.stack = stack;
  config.cca = cca;
  config.topology.server_qdisc = qdisc;
  config.payload_bytes = payload;
  return config;
}

/// N-sender scenario: flows[i] = configs[i % configs.size()], so a
/// single-element list is a homogeneous fleet and a pair alternates.
framework::MultiFlowConfig fleet(
    int flows, const std::vector<framework::ExperimentConfig>& configs) {
  framework::MultiFlowConfig config;
  config.seed = 7;
  for (int i = 0; i < flows; ++i) {
    config.flows.push_back(framework::FlowSpec{
        .config = configs[static_cast<std::size_t>(i) % configs.size()]});
  }
  return config;
}

void print_fleet_table(
    int flows, const std::vector<const char*>& labels,
    const std::vector<framework::MultiFlowResult>& results) {
  std::printf("\n%d flows sharing the bottleneck:\n", flows);
  std::printf("%-30s %9s %9s %9s %10s %8s\n", "scenario", "min [Mb]",
              "mean [Mb]", "max [Mb]", "fairness", "drops");
  std::printf("%s\n", std::string(80, '-').c_str());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& result = results[i];
    double min_mbps = 0.0;
    double max_mbps = 0.0;
    double sum_mbps = 0.0;
    for (std::size_t f = 0; f < result.flows.size(); ++f) {
      const double mbps = result.flows[f].goodput.goodput.mbps();
      min_mbps = f == 0 ? mbps : std::min(min_mbps, mbps);
      max_mbps = std::max(max_mbps, mbps);
      sum_mbps += mbps;
    }
    std::printf("%-30s %9.2f %9.2f %9.2f %10.3f %8lld\n", labels[i], min_mbps,
                sum_mbps / static_cast<double>(result.flows.size()), max_mbps,
                result.fairness,
                static_cast<long long>(result.bottleneck_drops));
  }
}

/// Fabric-scale fleet: N homogeneous ideal-pacing senders, bottleneck
/// capacity scaled so each flow's fair share is `share_mbps` regardless of
/// N (at the single-flow default topology a 10k fleet would measure
/// congestion collapse, not fairness). Lite metrics: per-flow aggregates
/// without the raw sample vectors, which at 10k flows dominate memory.
framework::MultiFlowConfig fabric_fleet(int flows, int share_mbps) {
  framework::ExperimentConfig flow;
  flow.stack = framework::StackKind::kIdealQuic;
  flow.payload_bytes = 64 * 1024;
  flow.topology.bottleneck_rate = net::DataRate::bits_per_second(
      static_cast<std::int64_t>(share_mbps) * 1'000'000 * flows);
  flow.topology.bottleneck_buffer_bytes =
      flow.topology.bottleneck_rate.bytes_in(sim::Duration::millis(40));

  framework::MultiFlowConfig config;
  config.seed = 7;
  config.lite_metrics = true;
  for (int i = 0; i < flows; ++i) {
    config.flows.push_back(framework::FlowSpec{.config = flow});
  }
  return config;
}

void run_fabric_scale(int flows) {
  struct Scenario {
    const char* label;
    int share_mbps;  // per-flow fair share the bottleneck is scaled to
  };
  // The second row halves the capacity: a 2:1 oversubscription that forces
  // bottleneck drops so the per-flow attribution has something to show.
  const Scenario scenarios[] = {
      {"provisioned (4 Mb fair share)", 4},
      {"oversubscribed (2 Mb fair share)", 2},
  };

  std::printf("\nfabric scale: %d homogeneous ideal-pacing flows\n", flows);
  std::printf("%-34s %9s %9s %8s %9s %8s %9s %9s %10s\n", "scenario", "done",
              "fairness", "drops", "attrib", "hitflows", "max/flow",
              "wall [s]", "flow-s/s");
  std::printf("%s\n", std::string(113, '-').c_str());

  for (const Scenario& scenario : scenarios) {
    const framework::MultiFlowConfig config =
        fabric_fleet(flows, scenario.share_mbps);
    const auto start = std::chrono::steady_clock::now();
    const framework::MultiFlowResult result = framework::run_flows(config);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    int completed = 0;
    std::int64_t attributed = 0;
    std::int64_t max_per_flow = 0;
    int flows_with_drops = 0;
    double flow_seconds = 0.0;  // summed per-flow transfer durations
    for (const framework::RunResult& flow : result.flows) {
      completed += flow.completed ? 1 : 0;
      attributed += flow.dropped_packets;
      max_per_flow = std::max(max_per_flow, flow.dropped_packets);
      flows_with_drops += flow.dropped_packets > 0 ? 1 : 0;
      flow_seconds += flow.goodput.elapsed.to_seconds();
    }
    // Simulated flow-seconds per wall-clock second on this core — the
    // flow_scale throughput number in BENCH_micro.json.
    std::printf("%-34s %9d %9.4f %8lld %9lld %8d %9lld %9.2f %10.1f\n",
                scenario.label, completed, result.fairness,
                static_cast<long long>(result.bottleneck_drops),
                static_cast<long long>(attributed), flows_with_drops,
                static_cast<long long>(max_per_flow), wall,
                flow_seconds / wall);
  }

  print_paper_note(
      "Fabric-scale future work: with the bottleneck provisioned to the "
      "fleet (fair share held constant), homogeneous paced senders split "
      "the link near-perfectly (Jain ~1) at any N; a 2:1 oversubscription "
      "spreads its drops across the fleet instead of starving a few flows, "
      "and every drop is attributed to exactly one sender.");
}

double fabric_wall_seconds(const framework::MultiFlowConfig& config) {
  const auto start = std::chrono::steady_clock::now();
  const framework::MultiFlowResult result = framework::run_flows(config);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // Keep the run honest (and un-elided): every flow must have moved data.
  if (result.fairness <= 0.0) std::abort();
  return wall;
}

/// Sampled-telemetry overhead on the provisioned fabric: the same N-flow
/// run untraced vs with 1-in-100 sampled tracing + 10 ms fleet telemetry
/// windows. Returns nonzero (for CI) when `gate` > 0 and the wall-clock
/// ratio exceeds it — the telemetry spine must stay within a few percent
/// of free at fabric scale, or nobody will leave it on.
int run_telemetry_overhead(int flows, double gate) {
  const framework::MultiFlowConfig untraced = fabric_fleet(flows, 4);
  framework::MultiFlowConfig telemetry = untraced;
  telemetry.trace_sample = 100;
  telemetry.telemetry_window = sim::Duration::millis(10);
  for (framework::FlowSpec& spec : telemetry.flows) {
    spec.config.trace = true;
  }

  // Best-of-two per arm, interleaved: first-run warmup (page faults,
  // allocator growth) lands on both arms and shared-runner noise cannot
  // systematically favor one side.
  double base = fabric_wall_seconds(untraced);
  double sampled = fabric_wall_seconds(telemetry);
  base = std::min(base, fabric_wall_seconds(untraced));
  sampled = std::min(sampled, fabric_wall_seconds(telemetry));

  const double ratio = sampled / base;
  std::printf("\ntelemetry overhead at %d flows (1-in-100 trace, 10 ms "
              "windows):\n", flows);
  std::printf("  untraced %.3f s, sampled-telemetry %.3f s, ratio %.3fx",
              base, sampled, ratio);
  if (gate > 0.0) {
    const bool ok = ratio <= gate;
    std::printf("  [gate %.2fx: %s]\n", gate, ok ? "pass" : "FAIL");
    return ok ? 0 : 1;
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int flow_count = 4;
  double telemetry_gate = 0.0;  // 0 = report only, no gate
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--flows") == 0) {
      flow_count = std::max(2, std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--telemetry-gate") == 0) {
      telemetry_gate = std::atof(argv[i + 1]);
    }
  }
  print_header("extD", "competing flows at the bottleneck (future work)");

  if (flow_count >= 64) {
    // Stack-matchup fleets at this N would measure wall-clock, not
    // fairness; the fabric-scale mode is the 100/1000/10000 sweep.
    run_fabric_scale(flow_count);
    return run_telemetry_overhead(flow_count, telemetry_gate);
  }

  const std::int64_t payload = framework::env_payload_bytes();

  struct Matchup {
    const char* label;
    framework::ExperimentConfig a;
    framework::ExperimentConfig b;
  };
  const Matchup matchups[] = {
      {"quiche vs quiche (no qdisc)",
       contender(framework::StackKind::kQuicheSf, cc::CcAlgorithm::kCubic,
                 framework::QdiscKind::kFqCodel, payload),
       contender(framework::StackKind::kQuicheSf, cc::CcAlgorithm::kCubic,
                 framework::QdiscKind::kFqCodel, payload)},
      {"quiche vs quiche (both FQ)",
       contender(framework::StackKind::kQuicheSf, cc::CcAlgorithm::kCubic,
                 framework::QdiscKind::kFq, payload),
       contender(framework::StackKind::kQuicheSf, cc::CcAlgorithm::kCubic,
                 framework::QdiscKind::kFq, payload)},
      {"picoquic vs TCP/TLS",
       contender(framework::StackKind::kPicoquic, cc::CcAlgorithm::kCubic,
                 framework::QdiscKind::kFqCodel, payload),
       contender(framework::StackKind::kTcpTls, cc::CcAlgorithm::kCubic,
                 framework::QdiscKind::kFqCodel, payload)},
      {"picoquic-BBR vs TCP/TLS",
       contender(framework::StackKind::kPicoquic, cc::CcAlgorithm::kBbr,
                 framework::QdiscKind::kFqCodel, payload),
       contender(framework::StackKind::kTcpTls, cc::CcAlgorithm::kCubic,
                 framework::QdiscKind::kFqCodel, payload)},
      {"quiche-FQ vs quiche-noqdisc",
       contender(framework::StackKind::kQuicheSf, cc::CcAlgorithm::kCubic,
                 framework::QdiscKind::kFq, payload),
       contender(framework::StackKind::kQuicheSf, cc::CcAlgorithm::kCubic,
                 framework::QdiscKind::kFqCodel, payload)},
  };

  // Duels are independent simulations; fan the matchup list out across the
  // worker pool and print in input order.
  std::vector<framework::DuelConfig> duels;
  for (const auto& matchup : matchups) {
    framework::DuelConfig duel;
    duel.a = matchup.a;
    duel.b = matchup.b;
    duel.seed = 7;
    duels.push_back(duel);
  }
  const auto results = framework::ParallelRunner().run_duels(duels);

  std::printf("%-30s %10s %10s %10s %10s\n", "matchup", "A [Mb]", "B [Mb]",
              "fairness", "drops");
  std::printf("%s\n", std::string(76, '-').c_str());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& result = results[i];
    std::printf("%-30s %10.2f %10.2f %10.3f %10lld\n", matchups[i].label,
                result.a.goodput.goodput.mbps(),
                result.b.goodput.goodput.mbps(), result.fairness,
                static_cast<long long>(result.bottleneck_drops));
  }

  // N-flow fabrics: the same matchup themes scaled to `--flows N` senders,
  // each fabric an independent simulation fanned across the worker pool.
  const std::int64_t share = std::max<std::int64_t>(
      payload / flow_count, 256 * 1024);  // keep per-flow transfers honest
  const auto quiche_codel =
      contender(framework::StackKind::kQuicheSf, cc::CcAlgorithm::kCubic,
                framework::QdiscKind::kFqCodel, share);
  const auto quiche_fq =
      contender(framework::StackKind::kQuicheSf, cc::CcAlgorithm::kCubic,
                framework::QdiscKind::kFq, share);
  const auto picoquic =
      contender(framework::StackKind::kPicoquic, cc::CcAlgorithm::kCubic,
                framework::QdiscKind::kFqCodel, share);
  const auto picoquic_bbr =
      contender(framework::StackKind::kPicoquic, cc::CcAlgorithm::kBbr,
                framework::QdiscKind::kFqCodel, share);

  const std::vector<const char*> fleet_labels = {
      "all quiche (no qdisc)",
      "all quiche (FQ)",
      "quiche / picoquic mix",
      "all picoquic-BBR",
  };
  const std::vector<framework::MultiFlowConfig> fleets = {
      fleet(flow_count, {quiche_codel}),
      fleet(flow_count, {quiche_fq}),
      fleet(flow_count, {quiche_codel, picoquic}),
      fleet(flow_count, {picoquic_bbr}),
  };
  const auto fleet_results = framework::ParallelRunner().run_flow_sets(fleets);
  print_fleet_table(flow_count, fleet_labels, fleet_results);

  print_paper_note(
      "Section 3.4 — competing flows are exactly what the paper excludes "
      "for reproducibility and defers to future work. Expected shapes: "
      "same-stack pairs split near-fairly (index ~1); paced senders lose "
      "fewer packets than unpaced ones at the same bottleneck; BBR vs "
      "loss-based shows the well-known aggression mismatch; fairness "
      "degrades gracefully as the sender count grows.");
  return 0;
}
