// Extension: the full batching spectrum of Section 4.3. The paper notes
// that "pacing single packets with qdiscs remains possible with batching
// methods like sendmmsg(), but not with GSO" — sendmmsg amortizes the
// syscall while keeping one skb per packet, so FQ can still pace each one.
// This bench puts all four send paths side by side.
#include "bench_common.hpp"

using namespace quicsteps;
using namespace quicsteps::bench;

int main() {
  print_header("extA", "send-path batching spectrum (Section 4.3)");

  struct Variant {
    const char* label;
    kernel::GsoMode gso;
    bool sendmmsg;
  };
  const Variant variants[] = {
      {"sendmsg", kernel::GsoMode::kOff, false},
      {"sendmmsg", kernel::GsoMode::kOff, true},
      {"gso", kernel::GsoMode::kOn, false},
      {"gso-paced", kernel::GsoMode::kPaced, false},
  };

  std::vector<framework::Aggregate> rows;
  for (const auto& variant : variants) {
    auto config = base_config(variant.label);
    config.stack = framework::StackKind::kQuicheSf;
    config.topology.server_qdisc = framework::QdiscKind::kFq;
    config.gso = variant.gso;
    config.use_sendmmsg = variant.sendmmsg;
    config.gso_segments = 16;
    rows.push_back(run(config));
  }

  std::printf("%-12s %14s %14s %14s %12s\n", "send path", "syscalls",
              "CPU [ms]", "pkts in <=5", "goodput");
  std::printf("%s\n", std::string(72, '-').c_str());
  for (const auto& row : rows) {
    std::printf("%-12s %14s %14s %13.1f%% %9.2f Mb\n", row.label.c_str(),
                row.send_syscalls.to_string(0).c_str(),
                row.cpu_time_ms.to_string(2).c_str(),
                100.0 * row.fraction_in_trains_up_to(5),
                row.goodput_mbps.mean);
  }

  print_paper_note(
      "Section 4.3 — sendmmsg keeps FQ pacing intact at (nearly) GSO's "
      "syscall price; stock GSO trades pacing for the last bit of CPU; the "
      "paced-GSO patch gets both. The four-way table is the full trade-off "
      "space the paper describes across Sections 4.2-4.3.");
  return 0;
}
