// Extension: ACK frequency vs pacing (paper Section 2). The paper flags
// the ongoing QUIC ACK-frequency work: fewer ACKs reduce receiver overhead
// but weaken ACK clocking, "and could lead to bursts if pacing is not
// implemented". This bench sweeps the receiver's ACK-eliciting threshold
// for quiche with and without a pacing qdisc.
#include "bench_common.hpp"

#include "quic/client.hpp"
#include "stacks/event_loop_model.hpp"

using namespace quicsteps;
using namespace quicsteps::bench;
using namespace quicsteps::sim::literals;

namespace {

struct AckFreqResult {
  double trains_up_to_5;
  double acks_per_data_packet;
  double goodput_mbps;
  double dropped;
};

AckFreqResult run_ack_threshold(framework::QdiscKind qdisc, int threshold,
                                std::int64_t payload) {
  sim::EventLoop loop;
  sim::Rng rng(17);
  framework::TopologyConfig tcfg;
  tcfg.server_qdisc = qdisc;
  framework::Topology topo(loop, tcfg, rng);

  auto profile = stacks::quiche_profile({.sf_patch = true});
  quic::Connection::Config conn_cfg;
  conn_cfg.total_payload_bytes = payload;
  stacks::StackServer server(loop, topo.server_os(), profile, conn_cfg,
                             topo.server_egress());
  quic::Client::Config ccfg;
  ccfg.expected_payload_bytes = payload;
  ccfg.ack.ack_eliciting_threshold = threshold;
  quic::Client client(loop, ccfg, topo.client_egress());
  topo.set_client_handler([&](net::Packet pkt) { client.on_datagram(pkt); });
  topo.set_server_handler([&](net::Packet pkt) { server.on_datagram(pkt); });

  server.start();
  loop.run_until(sim::Time::zero() + 600_s);

  AckFreqResult result;
  result.trains_up_to_5 = metrics::TrainAnalyzer()
                              .analyze(topo.tap().capture())
                              .fraction_in_trains_up_to(5);
  result.acks_per_data_packet =
      static_cast<double>(client.stats().acks_sent) /
      std::max<double>(1.0, static_cast<double>(
                                client.stats().data_packets_received));
  result.goodput_mbps =
      metrics::compute_goodput(client.stats().payload_bytes_received,
                               client.stats().first_packet_time,
                               client.stats().completion_time)
          .goodput.mbps();
  result.dropped = static_cast<double>(topo.bottleneck_drops());
  return result;
}

}  // namespace

int main() {
  print_header("extB", "ACK frequency vs pacing (Section 2 discussion)");

  const int thresholds[] = {2, 4, 8, 16, 32};
  const std::int64_t payload = framework::env_payload_bytes();

  for (auto qdisc : {framework::QdiscKind::kFqCodel,
                     framework::QdiscKind::kFq}) {
    std::printf("\nquiche+SF over %s:\n", framework::to_string(qdisc));
    std::printf("%-16s %12s %14s %12s %10s\n", "ack threshold",
                "acks/pkt", "pkts in <=5", "goodput", "drops");
    std::printf("%s\n", std::string(68, '-').c_str());
    for (int threshold : thresholds) {
      auto r = run_ack_threshold(qdisc, threshold, payload);
      std::printf("%-16d %12.3f %13.1f%% %9.2f Mb %10.0f\n", threshold,
                  r.acks_per_data_packet, 100.0 * r.trains_up_to_5,
                  r.goodput_mbps, r.dropped);
    }
  }

  print_paper_note(
      "Section 2 — 'a smaller ACK frequency ... reduces the effectiveness "
      "of ACK-clocking and could lead to bursts if pacing is not "
      "implemented.' Without a txtime qdisc, raising the threshold "
      "collapses the short-train share (each sparse ACK releases a burst); "
      "with FQ the pacing survives every ACK frequency — the quantitative "
      "version of the paper's argument for pacing under ACK-frequency "
      "reduction.");
  return 0;
}
