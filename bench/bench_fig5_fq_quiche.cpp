// Reproduces Figure 5 (and the Section 4.2 narrative): the impact of the
// FQ qdisc on quiche, with and without the SF patch that disables the
// spurious-loss rollback.
#include "bench_common.hpp"

using namespace quicsteps;
using namespace quicsteps::bench;

int main() {
  print_header("fig5", "FQ qdisc impact on quiche, SF patch (Figure 5)");

  struct Variant {
    const char* label;
    framework::StackKind stack;
    framework::QdiscKind qdisc;
  };
  const Variant variants[] = {
      {"baseline", framework::StackKind::kQuiche,
       framework::QdiscKind::kFqCodel},
      {"baseline-sf", framework::StackKind::kQuicheSf,
       framework::QdiscKind::kFqCodel},
      {"fq", framework::StackKind::kQuiche, framework::QdiscKind::kFq},
      {"fq-sf", framework::StackKind::kQuicheSf, framework::QdiscKind::kFq},
  };

  std::vector<framework::Aggregate> rows;
  for (const auto& variant : variants) {
    auto config = base_config(variant.label);
    config.stack = variant.stack;
    config.cca = cc::CcAlgorithm::kCubic;
    config.topology.server_qdisc = variant.qdisc;
    rows.push_back(run(config));
  }

  std::fputs(framework::render_train_figure(
                 rows, "quiche trains: baseline vs FQ, rollback vs SF")
                 .c_str(),
             stdout);
  std::fputs(framework::render_gap_figure(
                 rows, "quiche gaps: baseline vs FQ, rollback vs SF",
                 sim::Duration::millis(2))
                 .c_str(),
             stdout);
  std::fputs(framework::render_goodput_table(
                 rows, "quiche goodput/drops: baseline vs FQ")
                 .c_str(),
             stdout);

  std::printf("\n%-14s %20s\n", "configuration", "cwnd rollbacks");
  for (const auto& row : rows) {
    std::printf("%-14s %20s\n", row.label.c_str(),
                row.rollbacks.to_string(1).c_str());
  }

  print_paper_note(
      "Section 4.2 — with FQ, quiche's goodput worsens to 33.64±0.89 and "
      "drops rise to 1022.55±324.33 because paced (small) loss cycles stay "
      "under the spurious-loss threshold and the congestion window rolls "
      "back perpetually; with the SF patch, FQ makes trains >5 rare while "
      "the unpatched baseline keeps >10 % of packets in longer trains.");
  return 0;
}
