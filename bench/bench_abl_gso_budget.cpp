// Ablation B (DESIGN.md §7): the GSO segment budget. Section 4.3's "easier
// approach": send smaller GSO bursts and pace the gaps between them —
// trading CPU (syscalls) against burstiness. This sweep quantifies that
// trade-off, which the paper describes qualitatively.
#include "bench_common.hpp"

using namespace quicsteps;
using namespace quicsteps::bench;

int main() {
  print_header("ablB", "GSO segment-budget sweep (CPU vs burstiness)");

  const int budgets[] = {2, 4, 8, 16, 32, 64};

  std::printf("%-10s %14s %16s %16s %14s\n", "segments", "syscalls",
              "CPU [ms]", "pkts in <=5", "max train");
  std::printf("%s\n", std::string(74, '-').c_str());
  for (int budget : budgets) {
    auto config = base_config("gso-" + std::to_string(budget));
    config.stack = framework::StackKind::kQuicheSf;
    config.topology.server_qdisc = framework::QdiscKind::kFq;
    config.gso = kernel::GsoMode::kOn;
    config.gso_segments = budget;
    auto agg = run(config);
    std::size_t max_len = 0;
    if (!agg.pooled_packets_by_length.empty()) {
      max_len = agg.pooled_packets_by_length.rbegin()->first;
    }
    std::printf("%-10d %14s %16s %15.1f%% %14zu\n", budget,
                agg.send_syscalls.to_string(0).c_str(),
                agg.cpu_time_ms.to_string(2).c_str(),
                100.0 * agg.fraction_in_trains_up_to(5), max_len);
  }

  print_paper_note(
      "Section 4.3 — 'sending smaller GSO bursts ... does not fully utilize "
      "the advantages of GSO and requires a trade-off between CPU load and "
      "burstiness.' The sweep shows syscalls/CPU fall with the budget while "
      "train length grows with it; the paced-GSO patch (fig6/tab2) escapes "
      "the trade-off.");
  return 0;
}
