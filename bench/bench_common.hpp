// Shared plumbing for the reproduction benches: one experiment per paper
// artifact, scaled transfers (env-tunable), and paper-vs-measured output.
//
//   QUICSTEPS_PAYLOAD_MIB  transfer size per repetition (default 10; the
//                          paper used 100)
//   QUICSTEPS_REPS         repetitions per configuration (default 5; the
//                          paper used 20)
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/quicsteps.hpp"

namespace quicsteps::bench {

inline framework::ExperimentConfig base_config(const std::string& label) {
  framework::ExperimentConfig config;
  config.label = label;
  config.payload_bytes = framework::env_payload_bytes();
  config.repetitions = framework::env_repetitions();
  config.seed = 1;
  return config;
}

inline framework::Aggregate run(const framework::ExperimentConfig& config) {
  // Runner::run_all fans repetitions across the worker pool
  // (QUICSTEPS_JOBS / --jobs / hardware concurrency).
  return framework::aggregate(config.label,
                              framework::Runner::run_all(config));
}

/// Fans a whole configuration grid out across the worker pool — every
/// (config, repetition) pair is one task, so sweeps scale past the
/// per-config repetition count. Aggregates arrive in config order and are
/// bit-identical to running each config serially.
inline std::vector<framework::Aggregate> run_grid(
    const std::vector<framework::ExperimentConfig>& configs) {
  auto grid = framework::ParallelRunner().run_grid(configs);
  std::vector<framework::Aggregate> aggregates;
  aggregates.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    aggregates.push_back(
        framework::aggregate(configs[i].label, grid[i]));
  }
  return aggregates;
}

inline void print_header(const char* id, const char* what) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf(
      "payload %lld MiB x %d repetition(s); paper: 100 MiB x 20. Compare\n"
      "SHAPES (orderings, factors, crossovers), not absolute testbed values.\n",
      static_cast<long long>(framework::env_payload_bytes() / (1024 * 1024)),
      framework::env_repetitions());
  std::printf("================================================================\n");
}

inline void print_paper_note(const char* note) {
  std::printf("\npaper reference: %s\n", note);
}

}  // namespace quicsteps::bench
