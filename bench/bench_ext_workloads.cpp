// Extension: application workloads beyond the bulk download (the use cases
// the paper's introduction motivates and its conclusion differentiates:
// "depending on the application use case, e.g., video streaming, real-time
// communications, or web access, different pacing strategies or even no
// pacing at all might be beneficial").
//
// App-limited sources are the stress test for credit-based pacing: every
// frame/segment boundary is an idle period, and picoquic's leaky bucket
// answers each refill with a burst, while interval pacers restart smoothly.
#include "bench_common.hpp"

using namespace quicsteps;
using namespace quicsteps::bench;
using namespace quicsteps::sim::literals;

namespace {

void run_workload_table(const char* title, const quic::SourceConfig& source,
                        std::int64_t payload) {
  std::printf("\n%s\n", title);
  std::printf("%-22s %14s %14s %12s %10s\n", "configuration",
              "pkts in <=5", "max train", "goodput", "drops");
  std::printf("%s\n", std::string(78, '-').c_str());

  struct Variant {
    const char* label;
    framework::StackKind stack;
    cc::CcAlgorithm cca;
    framework::QdiscKind qdisc;
  };
  const Variant variants[] = {
      {"quiche (default)", framework::StackKind::kQuicheSf,
       cc::CcAlgorithm::kCubic, framework::QdiscKind::kFqCodel},
      {"quiche + FQ", framework::StackKind::kQuicheSf,
       cc::CcAlgorithm::kCubic, framework::QdiscKind::kFq},
      {"picoquic + CUBIC", framework::StackKind::kPicoquic,
       cc::CcAlgorithm::kCubic, framework::QdiscKind::kFqCodel},
      {"picoquic + BBR", framework::StackKind::kPicoquic,
       cc::CcAlgorithm::kBbr, framework::QdiscKind::kFqCodel},
      {"ngtcp2", framework::StackKind::kNgtcp2, cc::CcAlgorithm::kCubic,
       framework::QdiscKind::kFqCodel},
  };
  for (const auto& variant : variants) {
    framework::ExperimentConfig config;
    config.label = variant.label;
    config.stack = variant.stack;
    config.cca = variant.cca;
    config.topology.server_qdisc = variant.qdisc;
    config.workload = source;
    config.payload_bytes = payload;
    auto run = framework::Runner::run_once(config, 37);
    std::printf("%-22s %13.1f%% %14zu %9.2f Mb %10lld\n", variant.label,
                100.0 * run.trains.fraction_in_trains_up_to(5),
                run.trains.max_train_length(), run.goodput.goodput.mbps(),
                static_cast<long long>(run.dropped_packets));
  }
}

}  // namespace

int main() {
  print_header("extF", "application workloads (intro use cases)");

  // 2.5 Mbit/s video call, one frame every 33 ms, ~40 s of media.
  quic::SourceConfig call;
  call.kind = quic::SourceKind::kCbr;
  call.rate = net::DataRate::megabits_per_second(3);
  call.frame_interval = 33_ms;
  run_workload_table("real-time call: 3 Mbit/s CBR, 30 fps frames", call,
                     12ll * 1024 * 1024);

  // DASH VOD: 1 MiB segments every second (8.4 Mbit/s video).
  quic::SourceConfig vod;
  vod.kind = quic::SourceKind::kChunked;
  vod.chunk_bytes = 1024 * 1024;
  vod.period = 1_s;
  run_workload_table("VOD streaming: 1 MiB segment per second", vod,
                     12ll * 1024 * 1024);

  print_paper_note(
      "Conclusion of the paper — per-use-case pacing. The CBR table makes "
      "the mechanism sharp: pacing rates derived from cwnd/sRTT do NOTHING "
      "for app-limited flows (cwnd dwarfs the media rate, so the computed "
      "interval is near zero and every frame leaves as one burst — quiche "
      "and picoquic+CUBIC at ~0 % short trains, even through FQ), while "
      "BBR's delivery-rate-based pacing spreads each frame (picoquic+BBR: "
      "100 % short trains) — the quantitative basis for the paper's "
      "recommendation of picoquic+BBR for real-time traffic. Chunked VOD "
      "adds idle-restart bursts at segment boundaries, the regime where "
      "paced restarts matter most.");
  return 0;
}
