// Ablation C (DESIGN.md §7): the leaky-bucket depth behind picoquic's
// bursts. The 16-17 packet trains of Figures 3/4 are the bucket depth; a
// shallow bucket turns the same stack into a near-perfect pacer.
#include "bench_common.hpp"

#include "stacks/event_loop_model.hpp"

using namespace quicsteps;
using namespace quicsteps::bench;

int main() {
  print_header("ablC", "leaky-bucket depth sweep (picoquic burst size)");

  const int depths_packets[] = {1, 2, 4, 8, 16, 32};

  std::printf("%-16s %16s %14s %18s\n", "depth [packets]", "pkts in <=5",
              "max train", "modal burst len");
  std::printf("%s\n", std::string(68, '-').c_str());
  for (int depth : depths_packets) {
    // Run the picoquic profile with an overridden bucket depth through the
    // low-level API (the framework runner keeps profiles stock).
    sim::EventLoop loop;
    sim::Rng rng(7);
    framework::Topology topo(loop, {}, rng);
    auto profile = stacks::picoquic_profile({});
    profile.pacer.bucket_depth_bytes = depth * 1500;
    quic::Connection::Config conn_cfg;
    conn_cfg.total_payload_bytes = framework::env_payload_bytes();
    stacks::StackServer server(loop, topo.server_os(), profile, conn_cfg,
                               topo.server_egress());
    quic::Client client(
        loop,
        {.ack = {}, .expected_payload_bytes = conn_cfg.total_payload_bytes},
        topo.client_egress());
    topo.set_client_handler(
        [&](net::Packet pkt) { client.on_datagram(pkt); });
    topo.set_server_handler(
        [&](net::Packet pkt) { server.on_datagram(pkt); });
    server.start();
    loop.run_until(sim::Time::zero() + sim::Duration::seconds(600));

    auto trains = metrics::TrainAnalyzer().analyze(topo.tap().capture());
    std::size_t modal_len = 1;
    std::int64_t modal_packets = 0;
    for (const auto& [len, packets] : trains.packets_by_length) {
      if (len > 5 && packets > modal_packets) {
        modal_packets = packets;
        modal_len = len;
      }
    }
    std::printf("%-16d %15.1f%% %14zu %18zu\n", depth,
                100.0 * trains.fraction_in_trains_up_to(5),
                trains.max_train_length(), modal_len);
  }

  print_paper_note(
      "Section 4.1 — picoquic's 16-17 packet trains are its leaky-bucket "
      "depth draining after idle; with a 1-2 packet bucket (its BBR path) "
      "the same machinery paces almost perfectly.");
  return 0;
}
