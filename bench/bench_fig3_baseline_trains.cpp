// Reproduces Figure 3: distribution of packets across packet-train lengths
// (0.1 ms threshold) for the baseline measurement.
#include "bench_common.hpp"

using namespace quicsteps;
using namespace quicsteps::bench;

int main() {
  print_header("fig3", "baseline packet-train distribution (Figure 3)");

  const framework::StackKind stacks[] = {
      framework::StackKind::kQuiche, framework::StackKind::kPicoquic,
      framework::StackKind::kNgtcp2, framework::StackKind::kTcpTls};

  std::vector<framework::Aggregate> rows;
  for (auto stack : stacks) {
    auto config = base_config(framework::to_string(stack));
    config.stack = stack;
    config.cca = cc::CcAlgorithm::kCubic;
    rows.push_back(run(config));
  }

  std::fputs(framework::render_train_figure(
                 rows, "Baseline: share of packets per train length")
                 .c_str(),
             stdout);

  print_paper_note(
      "Figure 3 — TCP/TLS and ngtcp2 keep >99.9 % of packets in trains of "
      "<=5; quiche reaches ~89 % with an even 6-20 tail; picoquic only 60 % "
      "because ~40 % of its packets ride in 16-17 packet bucket bursts.");
  return 0;
}
