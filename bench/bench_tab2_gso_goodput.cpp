// Reproduces Table 2: goodput and dropped packets for the GSO variants —
// and the HyStart++ interaction that explains them (bursty GSO inflates
// the RTT fast, exits slow start early, loses little; smooth traffic
// overshoots and loses ~10x more).
#include "bench_common.hpp"

using namespace quicsteps;
using namespace quicsteps::bench;

int main() {
  print_header("tab2", "GSO goodput and drops, HyStart++ effect (Table 2)");

  struct Variant {
    const char* label;
    kernel::GsoMode gso;
  };
  const Variant variants[] = {
      {"enabled", kernel::GsoMode::kOn},
      {"disabled", kernel::GsoMode::kOff},
      {"paced", kernel::GsoMode::kPaced},
  };

  std::vector<framework::Aggregate> rows;
  for (const auto& variant : variants) {
    auto config = base_config(variant.label);
    config.stack = framework::StackKind::kQuicheSf;
    config.cca = cc::CcAlgorithm::kCubic;
    config.topology.server_qdisc = framework::QdiscKind::kFq;
    config.gso = variant.gso;
    config.gso_segments = 16;
    rows.push_back(run(config));
  }

  std::fputs(framework::render_goodput_table(
                 rows, "quiche + FQ: GSO variants (Table 2)")
                 .c_str(),
             stdout);

  print_paper_note(
      "Table 2 — enabled: 6.35 dropped / 31.06±0.33 Mbit/s; disabled: "
      "160.80 / 31.71±0.08; paced: 166.20 / 31.71±0.07. Shape targets: "
      "paced ≈ disabled, both with ~10x the loss of stock GSO (HyStart++ "
      "exits early only under bursty GSO), and stock GSO slightly lower "
      "goodput.");
  return 0;
}
