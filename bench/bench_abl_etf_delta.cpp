// Ablation A (DESIGN.md §7): the ETF delta parameter. The paper chose
// 200 us citing Bosk et al., who note "a higher value could reduce packet
// drops". Two sweeps:
//   1. Precision vs delta (paper configuration: missed launches transmit
//      immediately) — larger deltas hand packets to the driver earlier
//      and the spread grows.
//   2. TSN-strict LaunchTime (missed slot = drop): unless delta covers the
//      kernel/driver path time, descriptors reach the NIC after their
//      launch time and are dropped — the Bosk et al. trade-off.
#include "bench_common.hpp"

using namespace quicsteps;
using namespace quicsteps::bench;

int main() {
  print_header("ablA", "ETF delta sweep (design-choice ablation)");

  const sim::Duration deltas[] = {
      sim::Duration::micros(25),  sim::Duration::micros(50),
      sim::Duration::micros(100), sim::Duration::micros(200),
      sim::Duration::micros(400), sim::Duration::micros(1000),
      sim::Duration::micros(2000)};

  std::printf("-- paper configuration (missed launch transmits anyway) --\n");
  std::printf("%-12s %16s %16s\n", "delta [us]", "precision [ms]",
              "goodput [Mbit/s]");
  std::printf("%s\n", std::string(46, '-').c_str());
  for (auto delta : deltas) {
    auto config = base_config("etf-" + std::to_string(delta.us()));
    config.stack = framework::StackKind::kQuicheSf;
    config.topology.server_qdisc = framework::QdiscKind::kEtfOffload;
    config.topology.etf.delta = delta;
    auto agg = run(config);
    std::printf("%-12lld %16s %16s\n", static_cast<long long>(delta.us()),
                agg.precision_ms.to_string(3).c_str(),
                agg.goodput_mbps.to_string(2).c_str());
  }

  std::printf(
      "\n-- TSN-strict LaunchTime (missed slot = drop, Bosk et al.) --\n");
  std::printf("%-12s %18s %16s\n", "delta [us]", "missed-slot share",
              "goodput [Mbit/s]");
  std::printf("%s\n", std::string(48, '-').c_str());
  for (auto delta : deltas) {
    auto config = base_config("etf-strict-" + std::to_string(delta.us()));
    config.stack = framework::StackKind::kQuicheSf;
    config.topology.server_qdisc = framework::QdiscKind::kEtfOffload;
    config.topology.etf.delta = delta;
    config.topology.drop_missed_launch = true;
    // A strict-launch deployment stamps txtimes delta ahead of the
    // pacer's release so the qdisc+driver path can complete in time.
    config.txtime_headroom = delta;
    auto runs = framework::Runner::run_all(config);
    auto agg = framework::aggregate(config.label, runs);
    double missed = 0.0;
    for (const auto& r : runs) {
      if (r.packets_sent > 0) {
        missed += 1.0 - static_cast<double>(r.wire_data_packets) /
                            static_cast<double>(r.packets_sent);
      }
    }
    missed /= static_cast<double>(runs.size());
    std::printf("%-12lld %17.1f%% %16s\n", static_cast<long long>(delta.us()),
                100.0 * missed, agg.goodput_mbps.to_string(2).c_str());
  }

  print_paper_note(
      "Section 4.4 — the paper uses delta = 200 us (Bosk et al. suggest "
      "175 us). Precision degrades as delta grows (packets spend longer in "
      "the uncontrolled driver path); under TSN-strict launch semantics, "
      "small deltas drop the packets whose descriptors arrive late.");
  return 0;
}
