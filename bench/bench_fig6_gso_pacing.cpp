// Reproduces Figure 6: the impact of GSO on quiche's pacing — GSO off,
// stock GSO, and the paced-GSO kernel patch — all over FQ with the SF
// patch applied (the paper's Section 4.3 configuration).
#include "bench_common.hpp"

using namespace quicsteps;
using namespace quicsteps::bench;

int main() {
  print_header("fig6", "GSO vs pacing for quiche (Figure 6)");

  struct Variant {
    const char* label;
    kernel::GsoMode gso;
  };
  const Variant variants[] = {
      {"gso-disabled", kernel::GsoMode::kOff},
      {"gso-enabled", kernel::GsoMode::kOn},
      {"gso-paced", kernel::GsoMode::kPaced},
  };

  std::vector<framework::Aggregate> rows;
  for (const auto& variant : variants) {
    auto config = base_config(variant.label);
    config.stack = framework::StackKind::kQuicheSf;
    config.cca = cc::CcAlgorithm::kCubic;
    config.topology.server_qdisc = framework::QdiscKind::kFq;
    config.gso = variant.gso;
    config.gso_segments = 16;
    rows.push_back(run(config));
  }

  std::fputs(framework::render_gap_figure(
                 rows, "quiche + FQ: inter-packet gaps per GSO mode",
                 sim::Duration::millis(2))
                 .c_str(),
             stdout);
  std::fputs(framework::render_train_figure(
                 rows, "quiche + FQ: packet trains per GSO mode")
                 .c_str(),
             stdout);

  std::printf("\n%-14s %16s %16s\n", "configuration", "send syscalls",
              "sender CPU [ms]");
  for (const auto& row : rows) {
    std::printf("%-14s %16s %16s\n", row.label.c_str(),
                row.send_syscalls.to_string(0).c_str(),
                row.cpu_time_ms.to_string(2).c_str());
  }

  print_paper_note(
      "Figure 6 — stock GSO turns the paced stream into 16-segment line-rate "
      "bursts; the paced-GSO kernel patch restores GSO-off pacing (>80 % of "
      "packets outside any train) while keeping the single-syscall batching "
      "(see the syscall column).");
  return 0;
}
