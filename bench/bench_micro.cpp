// Micro-benchmarks (google-benchmark) for the hot simulation paths: event
// scheduling, qdisc enqueue/dequeue, pacer decisions, and the capture
// analyzers. These bound how large an experiment the framework can run.
#include <benchmark/benchmark.h>

#include "framework/parallel.hpp"
#include "framework/runner.hpp"
#include "kernel/os_model.hpp"
#include "kernel/qdisc_fq.hpp"
#include "kernel/qdisc_tbf.hpp"
#include "metrics/capture_analysis.hpp"
#include "net/packet_slab.hpp"
#include "metrics/gap_analyzer.hpp"
#include "metrics/precision.hpp"
#include "metrics/train_analyzer.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/quantile_sketch.hpp"
#include "obs/time_series.hpp"
#include "obs/trace.hpp"
#include "pacing/interval_pacer.hpp"
#include "pacing/leaky_bucket_pacer.hpp"
#include "sim/event_loop.hpp"

namespace {

using namespace quicsteps;
using namespace quicsteps::sim::literals;

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    long sum = 0;
    for (int i = 0; i < state.range(0); ++i) {
      loop.schedule_after(sim::Duration::micros(i % 997), [&sum] { ++sum; });
    }
    loop.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventLoopScheduleRun)->Arg(1000)->Arg(10000);

void BM_DrainScheduleRun(benchmark::State& state) {
  // The drain-channel counterpart of BM_EventLoopScheduleRun: the same
  // schedule pattern, but each event is a 32-bit payload on a registered
  // channel instead of a std::function closure. The ratio between the two
  // is the per-event saving the batched datapath banks on, and feeds the
  // `throughput` section of BENCH_micro.json.
  for (auto _ : state) {
    sim::EventLoop loop;
    long sum = 0;
    const sim::DrainId ch = loop.register_drain(
        sim::EventClass::kTransmit,
        [](void* ctx, std::uint32_t) { ++*static_cast<long*>(ctx); }, &sum);
    for (int i = 0; i < state.range(0); ++i) {
      loop.schedule_drain_at(
          loop.now() + sim::Duration::micros(i % 997), ch,
          static_cast<std::uint32_t>(i));
    }
    loop.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DrainScheduleRun)->Arg(1000)->Arg(10000);

net::Packet hop_packet(std::uint64_t id) {
  net::Packet pkt;
  pkt.id = id;
  pkt.flow = 1;
  pkt.size_bytes = 1514;
  pkt.packet_number = id;
  pkt.stream_offset = static_cast<std::int64_t>(id) * 1472;
  pkt.stream_length = 1472;
  return pkt;
}

void BM_LoopHopPacketClosure(benchmark::State& state) {
  // The pre-PR datapath idiom for one packet hop: a heap-allocated
  // std::function closure capturing the Packet by move, scheduled at the
  // packet's wire time. One wave = one pacer burst worth of 1514-byte
  // packets at 10 Gbit/s spacing. Baseline for BM_LoopHopPacketBatched;
  // the pair's items_per_second ratio is the "batched loop vs pre-PR
  // event loop" number in BENCH_micro.json's `throughput` section.
  const int packets = static_cast<int>(state.range(0));
  constexpr std::int64_t kSpacingNs = 1211;  // 1514 bytes at 10 Gbit/s
  sim::EventLoop loop;
  long long bytes = 0;
  for (auto _ : state) {
    const std::int64_t base = loop.now().ns();
    for (int i = 0; i < packets; ++i) {
      net::Packet pkt = hop_packet(static_cast<std::uint64_t>(i));
      loop.schedule_at(sim::Time::from_ns(base + i * kSpacingNs),
                       sim::EventClass::kTransmit,
                       [&bytes, pkt = std::move(pkt)]() mutable {
                         bytes += pkt.size_bytes;
                       });
    }
    loop.run();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(state.iterations() * packets);
}
BENCHMARK(BM_LoopHopPacketClosure)->Arg(10000);

struct HopConsumer {
  long long bytes = 0;
  net::PacketSlab* slab = nullptr;
  static void drain(void* self, std::uint32_t ref) {
    auto* c = static_cast<HopConsumer*>(self);
    c->bytes += c->slab->take(ref).size_bytes;
  }
};

void BM_LoopHopPacketBatched(benchmark::State& state) {
  // The batched datapath for the same hop: the Packet parks in the slab,
  // a slotless 24-byte drain record rides the wheel, and the wave drains
  // as a train without leaving run()'s cursor. Same work as the closure
  // arm — compare items_per_second.
  const int packets = static_cast<int>(state.range(0));
  constexpr std::int64_t kSpacingNs = 1211;
  sim::EventLoop loop;
  net::PacketSlab slab;
  HopConsumer consumer;
  consumer.slab = &slab;
  const sim::DrainId ch = loop.register_drain(sim::EventClass::kTransmit,
                                              &HopConsumer::drain, &consumer);
  for (auto _ : state) {
    const std::int64_t base = loop.now().ns();
    for (int i = 0; i < packets; ++i) {
      loop.post_drain_at(sim::Time::from_ns(base + i * kSpacingNs), ch,
                         slab.put(hop_packet(static_cast<std::uint64_t>(i))));
    }
    loop.run();
    benchmark::DoNotOptimize(consumer.bytes);
  }
  state.SetItemsProcessed(state.iterations() * packets);
}
BENCHMARK(BM_LoopHopPacketBatched)->Arg(10000);

void BM_EventLoopCancel(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    std::vector<sim::EventHandle> handles;
    handles.reserve(static_cast<std::size_t>(state.range(0)));
    for (int i = 0; i < state.range(0); ++i) {
      handles.push_back(loop.schedule_after(1_ms, [] {}));
    }
    for (auto& handle : handles) handle.cancel();
    loop.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventLoopCancel)->Arg(10000);

net::Packet bench_packet(std::uint64_t id) {
  net::Packet pkt;
  pkt.id = id;
  pkt.size_bytes = 1500;
  return pkt;
}

void BM_FqEnqueueDequeue(benchmark::State& state) {
  // range(0) timestamped packets spread round-robin over range(1) flows.
  // The flow-scale gate: per-op cost (time / items_per_second) at 10k
  // flows must stay within 2x of the 100-flow point — the per-flow heaps
  // plus the lazy-deletion head heap are O(log n) per packet, so the
  // growth is the log factor and cache misses, not a linear scan.
  const int packets = static_cast<int>(state.range(0));
  const int flows = static_cast<int>(state.range(1));
  for (auto _ : state) {
    sim::EventLoop loop;
    kernel::OsModel os({}, sim::Rng(1));
    net::CollectorSink sink;
    kernel::FqQdisc fq(loop, {.limit_packets = packets + 1}, os, &sink);
    for (int i = 0; i < packets; ++i) {
      net::Packet pkt = bench_packet(static_cast<std::uint64_t>(i));
      pkt.flow = static_cast<std::uint32_t>(1 + i % flows);
      pkt.has_txtime = true;
      pkt.txtime = sim::Time::zero() + sim::Duration::micros(i * 300 / flows);
      fq.deliver(std::move(pkt));
    }
    loop.run();
    benchmark::DoNotOptimize(sink.packets().size());
  }
  state.SetItemsProcessed(state.iterations() * packets);
}
BENCHMARK(BM_FqEnqueueDequeue)
    ->Args({1000, 1})
    ->Args({10000, 100})
    ->Args({10000, 1000})
    ->Args({10000, 10000});

void BM_FlowTableRegister(benchmark::State& state) {
  // range(0) routes in a scrambled id order; range(1) selects the
  // incremental sorted-insert path (0) or the bulk builder (1). The
  // incremental path memmoves on every out-of-order insert — O(n^2)
  // worst case — while the bulk build appends and sorts once.
  const int routes = static_cast<int>(state.range(0));
  const bool bulk = state.range(1) != 0;
  net::CollectorSink sink;
  std::vector<std::uint32_t> ids;
  ids.reserve(static_cast<std::size_t>(routes));
  for (int i = 0; i < routes; ++i) {
    // A fixed odd-stride permutation of [0, routes): deterministic,
    // uniformly scrambled registration order.
    ids.push_back(static_cast<std::uint32_t>(
        10 + (static_cast<std::uint64_t>(i) * 7919) % routes));
  }
  for (auto _ : state) {
    net::FlowTableSink table;
    if (bulk) table.begin_bulk(ids.size());
    for (const std::uint32_t id : ids) table.add_route(id, &sink);
    if (bulk) table.finish_bulk();
    benchmark::DoNotOptimize(table.route_count());
  }
  state.SetItemsProcessed(state.iterations() * routes);
}
BENCHMARK(BM_FlowTableRegister)
    ->Args({10000, 0})
    ->Args({10000, 1});

void BM_TbfShaping(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    net::CollectorSink sink;
    kernel::TbfQdisc tbf(loop,
                         {.rate = net::DataRate::megabits_per_second(40),
                          .burst_bytes = 3000,
                          .limit_bytes = 1 << 24},
                         &sink);
    for (int i = 0; i < state.range(0); ++i) {
      tbf.deliver(bench_packet(static_cast<std::uint64_t>(i)));
    }
    loop.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TbfShaping)->Arg(1000);

void BM_PacketSlabPutTake(benchmark::State& state) {
  // Steady-state slab traffic: a window of packets in flight, recycled
  // through the free list. After warm-up no iteration allocates.
  net::PacketSlab slab;
  constexpr int kWindow = 64;
  std::vector<net::PacketSlab::Ref> window;
  window.reserve(kWindow);
  std::uint64_t id = 0;
  for (auto _ : state) {
    window.push_back(slab.put(bench_packet(id++)));
    if (window.size() == kWindow) {
      for (const auto ref : window) {
        benchmark::DoNotOptimize(slab.take(ref).size_bytes);
      }
      window.clear();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketSlabPutTake);

void BM_IntervalPacerDecision(benchmark::State& state) {
  pacing::IntervalPacer pacer;
  const auto rate = net::DataRate::megabits_per_second(40);
  sim::Time now;
  for (auto _ : state) {
    const sim::Time release = pacer.earliest_send_time(now, 1500, rate);
    pacer.on_packet_sent(release, 1500, rate);
    now = release;
    benchmark::DoNotOptimize(release);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntervalPacerDecision);

void BM_LeakyBucketDecision(benchmark::State& state) {
  pacing::LeakyBucketPacer pacer(16 * 1500);
  const auto rate = net::DataRate::megabits_per_second(40);
  sim::Time now;
  for (auto _ : state) {
    const sim::Time release = pacer.earliest_send_time(now, 1500, rate);
    pacer.on_packet_sent(release, 1500, rate);
    now = release;
    benchmark::DoNotOptimize(release);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LeakyBucketDecision);

std::vector<net::Packet> synthetic_capture(int n) {
  std::vector<net::Packet> capture;
  capture.reserve(static_cast<std::size_t>(n));
  sim::Time t;
  for (int i = 0; i < n; ++i) {
    net::Packet pkt = bench_packet(static_cast<std::uint64_t>(i));
    pkt.flow = 1;
    pkt.wire_time = t;
    t += (i % 7 == 0) ? 1_ms : 12_us;
    capture.push_back(std::move(pkt));
  }
  return capture;
}

void BM_GapAnalysis(benchmark::State& state) {
  auto capture = synthetic_capture(static_cast<int>(state.range(0)));
  metrics::GapAnalyzer analyzer;
  for (auto _ : state) {
    auto report = analyzer.analyze(capture);
    benchmark::DoNotOptimize(report.back_to_back_fraction);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GapAnalysis)->Arg(100000);

void BM_TrainAnalysis(benchmark::State& state) {
  auto capture = synthetic_capture(static_cast<int>(state.range(0)));
  metrics::TrainAnalyzer analyzer;
  for (auto _ : state) {
    auto report = analyzer.analyze(capture);
    benchmark::DoNotOptimize(report.total_packets);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrainAnalysis)->Arg(100000);

void BM_CaptureAnalysisFourPass(benchmark::State& state) {
  // What Runner::run_once used to do: four separate walks over the capture
  // (gaps, trains, precision, data-packet count). Comparison baseline for
  // the single-pass facade below.
  auto capture = synthetic_capture(static_cast<int>(state.range(0)));
  metrics::GapAnalyzer gaps;
  metrics::TrainAnalyzer trains;
  metrics::PrecisionAnalyzer precision;
  for (auto _ : state) {
    auto gap_report = gaps.analyze(capture);
    auto train_report = trains.analyze(capture);
    auto precision_report = precision.analyze(capture);
    std::int64_t data_packets = 0;
    for (const auto& pkt : capture) {
      if (pkt.flow == 1 && (pkt.kind == net::PacketKind::kQuicData ||
                            pkt.kind == net::PacketKind::kTcpData)) {
        ++data_packets;
      }
    }
    benchmark::DoNotOptimize(gap_report.back_to_back_fraction);
    benchmark::DoNotOptimize(train_report.total_packets);
    benchmark::DoNotOptimize(precision_report.precision_ms);
    benchmark::DoNotOptimize(data_packets);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CaptureAnalysisFourPass)->Arg(100000);

void BM_CaptureAnalysisSinglePass(benchmark::State& state) {
  // The CaptureAnalyzer facade: all four per-run reports from one walk.
  auto capture = synthetic_capture(static_cast<int>(state.range(0)));
  metrics::CaptureAnalyzer analyzer;
  for (auto _ : state) {
    auto analysis = analyzer.analyze(capture);
    benchmark::DoNotOptimize(analysis.gaps.back_to_back_fraction);
    benchmark::DoNotOptimize(analysis.trains.total_packets);
    benchmark::DoNotOptimize(analysis.precision.precision_ms);
    benchmark::DoNotOptimize(analysis.wire_data_packets);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CaptureAnalysisSinglePass)->Arg(100000);

std::vector<net::Packet> synthetic_multi_flow_capture(int n, int flows) {
  // Per-flow trains of 16 packets, like real pacing at a shared bottleneck:
  // the demux's last-hit cache sees long runs, not per-packet flow churn.
  std::vector<net::Packet> capture;
  capture.reserve(static_cast<std::size_t>(n));
  sim::Time t;
  for (int i = 0; i < n; ++i) {
    net::Packet pkt = bench_packet(static_cast<std::uint64_t>(i));
    pkt.flow = static_cast<std::uint32_t>(10 + (i / 16) % flows);
    pkt.wire_time = t;
    t += (i % 7 == 0) ? 1_ms : 12_us;
    capture.push_back(std::move(pkt));
  }
  return capture;
}

void BM_FlowDemuxPerFlowRescan(benchmark::State& state) {
  // What run_duel used to do, generalized to N flows: one full capture
  // walk per flow, filtering on the flow id. O(N * packets).
  const int flows = static_cast<int>(state.range(1));
  auto capture =
      synthetic_multi_flow_capture(static_cast<int>(state.range(0)), flows);
  for (auto _ : state) {
    for (int f = 0; f < flows; ++f) {
      metrics::CaptureAnalyzer::Config config;
      config.flow = static_cast<std::uint32_t>(10 + f);
      metrics::CaptureAnalyzer analyzer(config);
      for (const auto& pkt : capture) {
        if (pkt.flow == config.flow) analyzer.add(pkt);
      }
      benchmark::DoNotOptimize(analyzer.finish().wire_data_packets);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FlowDemuxPerFlowRescan)
    ->Args({100000, 1})
    ->Args({100000, 2})
    ->Args({100000, 4})
    ->Args({100000, 8});

void BM_FlowDemuxSinglePass(benchmark::State& state) {
  // The fabric's FlowCaptureDemux: one walk routes every packet to its
  // flow's analyzer. O(packets), independent of the flow count.
  const int flows = static_cast<int>(state.range(1));
  auto capture =
      synthetic_multi_flow_capture(static_cast<int>(state.range(0)), flows);
  for (auto _ : state) {
    metrics::FlowCaptureDemux demux;
    for (int f = 0; f < flows; ++f) {
      demux.add_flow(static_cast<std::uint32_t>(10 + f));
    }
    demux.analyze(capture);
    for (std::size_t slot = 0; slot < demux.flow_count(); ++slot) {
      benchmark::DoNotOptimize(demux.finish(slot).wire_data_packets);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FlowDemuxSinglePass)
    ->Args({100000, 1})
    ->Args({100000, 2})
    ->Args({100000, 4})
    ->Args({100000, 8})
    // Fabric scale: the rescan baseline is O(N * packets) and unrunnable
    // here; the single-pass demux stays O(packets) with a burst cache in
    // front of a log2(N) binary search.
    ->Args({100000, 100})
    ->Args({100000, 1000})
    ->Args({100000, 10000});

void BM_TraceSpanSite(benchmark::State& state) {
  // One instrumented per-packet site with no bus installed: the runtime
  // "tracing off" state (a pointer null check) in a QUICSTEPS_TRACE build,
  // or the compiled-out macro in a -DQUICSTEPS_TRACE=OFF build.
  // BENCH_micro.json's trace_overhead section records both builds next to
  // the enabled state below.
  obs::TraceBus* bus = nullptr;
  const net::Packet pkt = bench_packet(1);
  const sim::Time now;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bus);  // the branch must stay in the loop
    QUICSTEPS_TRACE_SPAN(bus, obs::TraceStage::kNicTx, 0, now, pkt);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpanSite);

void BM_TraceSpanPublish(benchmark::State& state) {
  // The enabled state: a run opted in, every site appends a 48-byte span.
  // The bus is drained outside the measured region so memory stays flat.
  obs::TraceBus bus;
  [[maybe_unused]] const std::uint16_t id = bus.register_component("bench");
  const net::Packet pkt = bench_packet(1);
  const sim::Time now;
  obs::TraceBus* installed = obs::kTraceEnabled ? &bus : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(installed);
    QUICSTEPS_TRACE_SPAN(installed, obs::TraceStage::kNicTx, id, now, pkt);
    if (bus.events().size() >= (1u << 16)) {
      state.PauseTiming();
      obs::TraceData drained = bus.take();
      benchmark::DoNotOptimize(drained.events.size());
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpanPublish);

void BM_MetricsCounterByName(benchmark::State& state) {
  // The old per-packet call-site shape: one map lookup (string hash +
  // node walk) per touch. Baseline for BM_MetricsCounterHandle.
  obs::MetricsRegistry reg;
  reg.add_counter("fleet/wire_packets", 0);
  for (auto _ : state) {
    reg.add_counter("fleet/wire_packets", 1);
  }
  benchmark::DoNotOptimize(reg.counters().size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterByName);

void BM_MetricsCounterHandle(benchmark::State& state) {
  // The pre-resolved handle the telemetry tap uses: resolve once at
  // wiring time, then a bare int64 add per packet.
  obs::MetricsRegistry reg;
  const obs::CounterHandle handle = reg.counter("fleet/wire_packets");
  for (auto _ : state) {
    handle.add(1);
    // Forces the store to land each iteration; without it the compiler
    // folds the whole loop into one add of `iterations`.
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(reg.counters().size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterHandle);

void BM_QuantileSketchObserve(benchmark::State& state) {
  // Per-sample sketch cost over a mixed-magnitude stream (exact region
  // plus several octaves, both signs) — the per-span price of the fleet
  // pacing-error tail.
  obs::QuantileSketch sketch;
  std::int64_t v = 1;
  for (auto _ : state) {
    v = v * 6364136223846793005ll + 1442695040888963407ll;
    sketch.observe((v >> 33) % 1'000'000 - 200'000);
  }
  benchmark::DoNotOptimize(sketch.count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuantileSketchObserve);

void BM_TimeSeriesOnPacket(benchmark::State& state) {
  // The telemetry tap's per-packet hot path: ordinal divide, predicted
  // not-taken roll check, two adds. Window rolls amortize to ~0 (one per
  // thousands of packets at real rates); the ring never allocates.
  obs::TimeSeries series(1_ms, 4096, nullptr, nullptr);
  sim::Time now;
  const sim::Duration gap = sim::Duration::nanos(12'000);  // 1200 B at 800 Mbit/s
  for (auto _ : state) {
    now += gap;
    series.on_wire_packet(now, 1200);
  }
  benchmark::DoNotOptimize(series.end_ordinal());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimeSeriesOnPacket);

void BM_RunWithTrace(benchmark::State& state) {
  // Whole-run cost of path tracing through a real transfer: arg 0 runs
  // untraced (spans compiled in, bus never installed), arg 1 records the
  // full span stream plus the per-flow TraceData demux.
  framework::ExperimentConfig config;
  config.label = "bench";
  config.stack = framework::StackKind::kQuicheSf;
  config.payload_bytes = 1ll * 1024 * 1024;
  config.repetitions = 1;
  config.seed = 1;
  config.trace = state.range(0) != 0;
  for (auto _ : state) {
    auto run = framework::Runner::run_once(config, config.seed);
    benchmark::DoNotOptimize(run.packets_sent);
    benchmark::DoNotOptimize(run.trace);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RunWithTrace)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

framework::ExperimentConfig highbw_config(bool batched) {
  // The 10 Gbit/s point of the bench_ext_highbw family: a short-RTT
  // multi-Gbit path that stresses the per-packet event cost rather than
  // the paper's 40 Mbit/s bottleneck. items_per_second is simulated
  // packets per wall-clock second on one core — the number the
  // `throughput` section of BENCH_micro.json gates on (batched >= 2x
  // legacy at this point).
  framework::ExperimentConfig config;
  config.label = batched ? "highbw-batched" : "highbw-legacy";
  config.stack = framework::StackKind::kQuicheSf;
  config.payload_bytes = 8ll * 1024 * 1024;
  config.repetitions = 1;
  config.seed = 1;
  config.topology.bottleneck_rate = net::DataRate::gigabits_per_second(10);
  config.topology.server_nic_rate = net::DataRate::gigabits_per_second(40);
  config.topology.path_delay_one_way = sim::Duration::millis(1);
  config.topology.bottleneck_buffer_bytes =
      net::DataRate::gigabits_per_second(10).bytes_in(sim::Duration::millis(2));
  config.topology.tbf_burst_bytes = 16 * 1514;
  config.topology.batched_datapath = batched;
  return config;
}

void BM_HighBwRun(benchmark::State& state) {
  // Arg 0 = legacy closure-per-packet datapath (pre-batching baseline),
  // arg 1 = batched drain trains + packet slab. Identical wire_hash either
  // way; only host-side cost differs.
  const auto config = highbw_config(state.range(0) != 0);
  std::int64_t packets = 0;
  for (auto _ : state) {
    auto run = framework::Runner::run_once(config, config.seed);
    packets = run.packets_sent;
    benchmark::DoNotOptimize(run.completed);
  }
  state.SetItemsProcessed(state.iterations() * packets);
}
BENCHMARK(BM_HighBwRun)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

std::vector<framework::ExperimentConfig> bench_grid() {
  std::vector<framework::ExperimentConfig> grid;
  for (auto stack :
       {framework::StackKind::kQuicheSf, framework::StackKind::kPicoquic}) {
    framework::ExperimentConfig config;
    config.label = framework::to_string(stack);
    config.stack = stack;
    config.payload_bytes = 1ll * 1024 * 1024;
    config.repetitions = 2;
    config.seed = 1;
    grid.push_back(config);
  }
  return grid;
}

void BM_ExperimentGridSerial(benchmark::State& state) {
  // Reference: run the same small grid one (config, seed) at a time.
  const auto grid = bench_grid();
  for (auto _ : state) {
    std::int64_t packets = 0;
    for (const auto& config : grid) {
      for (int rep = 0; rep < config.repetitions; ++rep) {
        auto run = framework::Runner::run_once(
            config, config.seed + static_cast<std::uint64_t>(rep));
        packets += run.packets_sent;
      }
    }
    benchmark::DoNotOptimize(packets);
  }
  state.SetItemsProcessed(state.iterations() * 4);  // 2 configs x 2 reps
}
BENCHMARK(BM_ExperimentGridSerial)->Unit(benchmark::kMillisecond);

void BM_ExperimentGridParallel(benchmark::State& state) {
  // Same grid through the worker pool. On a multi-core host the wall-clock
  // win approaches the job count; results are bit-identical either way.
  const auto grid = bench_grid();
  framework::ParallelRunner pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::int64_t packets = 0;
    for (const auto& runs : pool.run_grid(grid)) {
      for (const auto& run : runs) packets += run.packets_sent;
    }
    benchmark::DoNotOptimize(packets);
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_ExperimentGridParallel)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
