// Reproduces Appendix Figure 7: the congestion-window time series of
// quiche's spurious-loss rollback behavior under FQ (perpetual rollbacks)
// against the SF-patched run.
#include "bench_common.hpp"

using namespace quicsteps;
using namespace quicsteps::bench;

int main() {
  print_header("fig7", "quiche spurious-loss cwnd rollbacks (Figure 7)");

  auto config = base_config("quiche+fq");
  config.stack = framework::StackKind::kQuiche;
  config.topology.server_qdisc = framework::QdiscKind::kFq;
  config.record_cwnd_trace = true;
  config.repetitions = 1;

  auto rollback_run = framework::Runner::run_once(config, config.seed);
  std::fputs(framework::render_cwnd_trace(
                 rollback_run, "quiche + FQ, rollback enabled (cwnd over time)")
                 .c_str(),
             stdout);
  std::printf("rollbacks performed: %lld, packets declared lost: %lld\n",
              static_cast<long long>(rollback_run.cc_rollbacks),
              static_cast<long long>(rollback_run.packets_declared_lost));

  config.stack = framework::StackKind::kQuicheSf;
  config.label = "quiche-sf+fq";
  auto sf_run = framework::Runner::run_once(config, config.seed);
  std::fputs(framework::render_cwnd_trace(
                 sf_run, "quiche + FQ, SF patch (cwnd over time)")
                 .c_str(),
             stdout);
  std::printf("rollbacks performed: %lld, packets declared lost: %lld\n",
              static_cast<long long>(sf_run.cc_rollbacks),
              static_cast<long long>(sf_run.packets_declared_lost));

  print_paper_note(
      "Figure 7 — the unpatched run shows the window repeatedly snapping "
      "back up after each reduction (checkpoint restore), producing extra "
      "loss; the SF-patched run shows the normal CUBIC sawtooth.");
  return 0;
}
