// Reproduces Section 4.4: pacing precision — the standard deviation of
// (actual wire timestamp − intended send timestamp) per packet — for the
// default qdisc, FQ, software ETF, and ETF with LaunchTime offload.
// Measured without GSO, as in the paper.
#include "bench_common.hpp"

using namespace quicsteps;
using namespace quicsteps::bench;

int main() {
  print_header("sec44", "pacing precision per qdisc (Section 4.4)");

  struct Variant {
    const char* label;
    framework::QdiscKind qdisc;
  };
  const Variant variants[] = {
      {"baseline", framework::QdiscKind::kFqCodel},
      {"fq", framework::QdiscKind::kFq},
      {"etf", framework::QdiscKind::kEtf},
      {"etf+launchtime", framework::QdiscKind::kEtfOffload},
  };

  std::vector<framework::Aggregate> rows;
  for (const auto& variant : variants) {
    auto config = base_config(variant.label);
    config.stack = framework::StackKind::kQuicheSf;
    config.cca = cc::CcAlgorithm::kCubic;
    config.topology.server_qdisc = variant.qdisc;
    config.gso = kernel::GsoMode::kOff;
    rows.push_back(run(config));
  }

  std::fputs(framework::render_precision_table(
                 rows, "Precision: stddev of wire-vs-intended send time")
                 .c_str(),
             stdout);

  print_paper_note(
      "Section 4.4 — baseline 0.94 ms (kernel ignores timestamps), FQ "
      "0.12 ms, ETF 0.27 ms, ETF+LaunchTime 0.28 ms. Shape targets: FQ is "
      "the most precise; hardware offload does NOT beat software ETF; the "
      "baseline is far worse than any timestamp-honoring qdisc.");
  return 0;
}
