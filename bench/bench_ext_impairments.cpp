// Extension: path impairments and receive offload — robustness of the
// paper's findings outside the clean testbed. Three sub-experiments:
//   1. random loss on the data path (does pacing still pay off?),
//   2. reordering (does RFC 9002 loss detection stay accurate?),
//   3. client-side GRO (does receive batching chop the ACK clock?).
#include "bench_common.hpp"

using namespace quicsteps;
using namespace quicsteps::bench;
using namespace quicsteps::sim::literals;

int main() {
  print_header("extE", "impairments: loss, reordering, GRO (future work)");

  const std::int64_t payload = framework::env_payload_bytes();

  // ---- 1. random loss --------------------------------------------------
  std::printf("random loss on the data path (quiche+SF over FQ):\n");
  std::printf("%-12s %12s %14s %14s\n", "loss", "goodput", "declared lost",
              "spurious retx");
  std::printf("%s\n", std::string(56, '-').c_str());
  for (double loss : {0.0, 0.001, 0.005, 0.02}) {
    framework::ExperimentConfig config;
    config.stack = framework::StackKind::kQuicheSf;
    config.topology.server_qdisc = framework::QdiscKind::kFq;
    config.topology.path_loss_probability = loss;
    config.payload_bytes = payload;
    auto run = framework::Runner::run_once(config, 23);
    std::printf("%-11.1f%% %9.2f Mb %14lld %14lld\n", 100 * loss,
                run.goodput.goodput.mbps(),
                static_cast<long long>(run.packets_declared_lost),
                static_cast<long long>(run.retransmissions -
                                       run.packets_declared_lost));
  }

  // ---- 2. reordering ----------------------------------------------------
  std::printf("\nreordering on the data path (quiche+SF over FQ):\n");
  std::printf("%-12s %12s %14s %14s\n", "reorder", "goodput",
              "declared lost", "actual drops");
  std::printf("%s\n", std::string(56, '-').c_str());
  for (double reorder : {0.0, 0.01, 0.05}) {
    framework::ExperimentConfig config;
    config.stack = framework::StackKind::kQuicheSf;
    config.topology.server_qdisc = framework::QdiscKind::kFq;
    config.topology.path_reorder_probability = reorder;
    config.payload_bytes = payload;
    auto run = framework::Runner::run_once(config, 29);
    std::printf("%-11.1f%% %9.2f Mb %14lld %14lld\n", 100 * reorder,
                run.goodput.goodput.mbps(),
                static_cast<long long>(run.packets_declared_lost),
                static_cast<long long>(run.dropped_packets));
  }

  // ---- 3. client GRO ----------------------------------------------------
  std::printf("\nclient-side GRO window (quiche+SF, no pacing qdisc vs FQ):\n");
  std::printf("%-14s %-10s %14s %12s\n", "GRO window", "qdisc",
              "pkts in <=5", "goodput");
  std::printf("%s\n", std::string(54, '-').c_str());
  for (auto qdisc :
       {framework::QdiscKind::kFqCodel, framework::QdiscKind::kFq}) {
    for (auto window : {0_us, 500_us, 2000_us}) {
      framework::ExperimentConfig config;
      config.stack = framework::StackKind::kQuicheSf;
      config.topology.server_qdisc = qdisc;
      config.topology.client_gro_window = window;
      config.payload_bytes = payload;
      auto run = framework::Runner::run_once(config, 31);
      std::printf("%-14s %-10s %13.1f%% %9.2f Mb\n",
                  window.to_string().c_str(), framework::to_string(qdisc),
                  100.0 * run.trains.fraction_in_trains_up_to(5),
                  run.goodput.goodput.mbps());
    }
  }

  print_paper_note(
      "Section 3.4 leaves all of these to future work. Measured shapes: "
      "random loss degrades throughput via CUBIC reductions (2 % loss "
      "stalls the transfer past the run deadline — goodput 0 means "
      "incomplete); even 1 % reordering triggers RFC 9002's FIXED packet "
      "threshold (a 2 ms jump overtakes ~6 packets > kPacketThreshold=3), "
      "each false loss costing a congestion event — the case for adaptive "
      "reordering thresholds; a GRO'd receiver batches its ACKs, which at "
      "2 ms windows destroys an unpaced sender's wire smoothness (0.6 % "
      "short trains) while FQ pacing is immune (87.7 %) — the receive-side "
      "mirror of the paper's GSO result.");
  return 0;
}
