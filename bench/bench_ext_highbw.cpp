// Extension: multi-Gbit hot path. The paper's testbed tops out at a
// 40 Mbit/s bottleneck; this bench pushes the same machinery to 1-10
// Gbit/s short-RTT paths, where the simulator's own per-packet event cost
// — not the modeled network — becomes the bottleneck. It measures
// simulated packets per wall-clock second on ONE core for the legacy
// closure-per-packet datapath versus the batched drain-train + packet-slab
// datapath, at each rate and with an ACK-frequency/GRO-style receiver
// batching window. Both datapaths must produce the same wire_hash: the
// optimization is host-side only.
//
//   QUICSTEPS_HIGHBW_MIB    transfer size per run (default 8)
//   QUICSTEPS_HIGHBW_IDEAL  set to also sweep the ideal-pacing stack
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"

using namespace quicsteps;
using namespace quicsteps::bench;

namespace {

struct RatePoint {
  const char* label;
  double gbps;
};

framework::ExperimentConfig highbw_config(framework::StackKind stack,
                                          double gbps, bool batched,
                                          int gro_us) {
  framework::ExperimentConfig config;
  config.label = batched ? "batched" : "legacy";
  config.stack = stack;
  const char* mib = std::getenv("QUICSTEPS_HIGHBW_MIB");
  config.payload_bytes =
      (mib != nullptr ? std::atoll(mib) : 8ll) * 1024 * 1024;
  config.repetitions = 1;
  config.seed = 1;
  const auto rate = net::DataRate::bits_per_second(
      static_cast<std::int64_t>(gbps * 1e9));
  config.topology.bottleneck_rate = rate;
  config.topology.server_nic_rate = net::DataRate::gigabits_per_second(40);
  config.topology.path_delay_one_way = sim::Duration::millis(1);
  // 2 ms of buffering at line rate, like the paper's BDP-scaled buffers.
  config.topology.bottleneck_buffer_bytes =
      rate.bytes_in(sim::Duration::millis(2));
  config.topology.tbf_burst_bytes = 16 * 1514;
  config.topology.batched_datapath = batched;
  config.topology.client_gro_window = sim::Duration::micros(gro_us);
  return config;
}

struct Measured {
  double pkts_per_s = 0;
  std::int64_t packets = 0;
  std::uint64_t wire_hash = 0;
};

/// Single-core wall-clock measurement: best of `trials` timed batches of
/// `runs` deterministic repeats (best-of rejects scheduler noise; the work
/// per run is identical, so the fastest batch is the least-perturbed one).
Measured measure(const framework::ExperimentConfig& config, int trials,
                 int runs) {
  Measured m;
  for (int t = 0; t < trials; ++t) {
    std::int64_t packets = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < runs; ++i) {
      auto run = framework::Runner::run_once(config, config.seed);
      packets += run.packets_sent;
      m.wire_hash = run.wire_hash;
      m.packets = run.packets_sent;
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (packets / s > m.pkts_per_s) m.pkts_per_s = packets / s;
  }
  return m;
}

}  // namespace

int main() {
  print_header("extH", "multi-Gbit hot path: packets/s per core");

  const RatePoint rates[] = {
      {"1 Gbit/s", 1.0}, {"2.5 Gbit/s", 2.5}, {"5 Gbit/s", 5.0},
      {"10 Gbit/s", 10.0}};
  const int gro_points[] = {0, 16};

  std::vector<framework::StackKind> stacks = {framework::StackKind::kQuicheSf};
  if (std::getenv("QUICSTEPS_HIGHBW_IDEAL") != nullptr) {
    stacks.push_back(framework::StackKind::kIdealQuic);
  }

  std::printf("%-10s %-12s %7s %10s %12s %12s %7s %8s\n", "stack", "rate",
              "gro_us", "packets", "legacy p/s", "batched p/s", "ratio",
              "hash_eq");
  std::printf("%s\n", std::string(84, '-').c_str());

  bool all_hashes_equal = true;
  for (auto stack : stacks) {
    for (const auto& rate : rates) {
      for (int gro_us : gro_points) {
        // Interleave the two arms across rounds so slow machine phases hit
        // both; keep the best round of each.
        Measured legacy, batched;
        for (int round = 0; round < 2; ++round) {
          Measured l =
              measure(highbw_config(stack, rate.gbps, false, gro_us), 1, 5);
          Measured b =
              measure(highbw_config(stack, rate.gbps, true, gro_us), 1, 5);
          if (l.pkts_per_s > legacy.pkts_per_s) legacy = l;
          if (b.pkts_per_s > batched.pkts_per_s) batched = b;
        }
        const bool hash_eq = legacy.wire_hash == batched.wire_hash;
        all_hashes_equal = all_hashes_equal && hash_eq;
        std::printf("%-10s %-12s %7d %10lld %12.0f %12.0f %7.2f %8s\n",
                    framework::to_string(stack), rate.label, gro_us,
                    static_cast<long long>(batched.packets), legacy.pkts_per_s,
                    batched.pkts_per_s, batched.pkts_per_s / legacy.pkts_per_s,
                    hash_eq ? "yes" : "NO");
      }
    }
    std::printf("\n");
  }

  print_paper_note(
      "No testbed counterpart — the paper's bottleneck is 40 Mbit/s. This "
      "family gates the framework's own hot path: the batched datapath must "
      "beat the legacy closure-per-packet loop at every rate with an "
      "identical wire_hash (host-side optimization only; the modeled "
      "network cannot tell the difference). The receiver batching window "
      "(gro_us) stands in for ACK-frequency/GRO coalescing and lifts both "
      "datapaths by shrinking the ACK event stream.");
  return all_hashes_equal ? 0 : 1;
}
