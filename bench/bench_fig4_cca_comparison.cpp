// Reproduces Figure 4: per-library comparison of inter-packet gaps and
// packet-train lengths across congestion controllers (CUBIC, NewReno, BBR).
#include "bench_common.hpp"

using namespace quicsteps;
using namespace quicsteps::bench;

int main() {
  print_header("fig4", "per-stack CCA comparison (Figure 4)");

  const framework::StackKind stacks[] = {framework::StackKind::kPicoquic,
                                         framework::StackKind::kQuiche,
                                         framework::StackKind::kNgtcp2};
  const cc::CcAlgorithm ccas[] = {cc::CcAlgorithm::kCubic,
                                  cc::CcAlgorithm::kNewReno,
                                  cc::CcAlgorithm::kBbr};

  // The full (stack x CCA) grid fans out across the worker pool at once.
  std::vector<framework::ExperimentConfig> grid;
  for (auto stack : stacks) {
    for (auto cca : ccas) {
      std::string label = std::string(framework::to_string(stack)) + "+" +
                          cc::to_string(cca);
      auto config = base_config(label);
      config.stack = stack;
      config.cca = cca;
      grid.push_back(config);
    }
  }
  const auto aggregates = run_grid(grid);

  std::size_t row = 0;
  for (auto stack : stacks) {
    std::vector<framework::Aggregate> rows;
    for ([[maybe_unused]] auto cca : ccas) {
      rows.push_back(aggregates[row++]);
    }
    std::string title =
        std::string(framework::to_string(stack)) + ": gaps across CCAs";
    std::fputs(framework::render_gap_figure(rows, title, sim::Duration::millis(2)).c_str(),
               stdout);
    title = std::string(framework::to_string(stack)) +
            ": packet trains across CCAs";
    std::fputs(framework::render_train_figure(rows, title).c_str(), stdout);

    std::printf("\n%-22s %18s %14s\n", "configuration", "declared lost",
                "goodput");
    for (const auto& row : rows) {
      std::printf("%-22s %18s %11s Mb\n", row.label.c_str(),
                  row.declared_lost.to_string(1).c_str(),
                  row.goodput_mbps.to_string(2).c_str());
    }
    std::printf("\n");
  }

  print_paper_note(
      "Figure 4 — picoquic with BBR is near-perfectly spaced (its rate-based "
      "user-space waits); with CUBIC/NewReno it bursts 16-17 packet trains. "
      "quiche and ngtcp2 pace no better under BBR than their baselines. "
      "(ngtcp2's BBR loss explosion is NOT reproduced: our ngtcp2 model's "
      "flow-control cap — the documented substitution for its deterministic "
      "15.93 Mbit/s — also prevents BBRv1 overshoot; see EXPERIMENTS.md.)");
  return 0;
}
