// Reproduces Figure 2: CDF of inter-packet gaps for the baseline
// measurement (default qdisc, CUBIC) across all four stacks.
#include "bench_common.hpp"

using namespace quicsteps;
using namespace quicsteps::bench;

int main() {
  print_header("fig2", "baseline inter-packet gap CDFs (Figure 2)");

  const framework::StackKind stacks[] = {
      framework::StackKind::kQuiche, framework::StackKind::kPicoquic,
      framework::StackKind::kNgtcp2, framework::StackKind::kTcpTls};

  std::vector<framework::Aggregate> rows;
  for (auto stack : stacks) {
    auto config = base_config(framework::to_string(stack));
    config.stack = stack;
    config.cca = cc::CcAlgorithm::kCubic;
    rows.push_back(run(config));
  }

  std::fputs(framework::render_gap_figure(
                 rows, "Baseline inter-packet gap CDF (x in ms)",
                 sim::Duration::millis(2))
                 .c_str(),
             stdout);

  print_paper_note(
      "Figure 2 — ~50 % of packets are sent back-to-back for every stack "
      "(picoquic slightly fewer at ~40 %), and the majority of gaps stay "
      "below 1.5 ms.");
  return 0;
}
