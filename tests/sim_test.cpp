// Unit tests for the discrete-event core: time arithmetic, event ordering,
// cancellation, and deterministic randomness.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_loop.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace quicsteps::sim {
namespace {

using namespace quicsteps::sim::literals;

TEST(Time, DurationFactoriesAgree) {
  EXPECT_EQ(Duration::micros(1).ns(), 1000);
  EXPECT_EQ(Duration::millis(1).ns(), 1'000'000);
  EXPECT_EQ(Duration::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(Duration::seconds_f(0.5).ns(), 500'000'000);
  EXPECT_EQ((12_us).ns(), 12'000);
}

TEST(Time, ArithmeticRoundTrips) {
  const Time t = Time::zero() + 5_ms;
  EXPECT_EQ((t - Time::zero()).ms(), 5);
  EXPECT_EQ((t + 1_ms - t).us(), 1000);
  EXPECT_LT(Time::zero(), t);
}

TEST(Time, InfiniteSentinelSaturatesInsteadOfWrapping) {
  // Regression: Time::infinite() + d used to wrap INT64_MAX (signed
  // overflow, UB) into a huge negative instant; now both types saturate
  // at the sentinel.
  EXPECT_TRUE((Time::infinite() + 1_ms).is_infinite());
  EXPECT_TRUE((Duration::infinite() + Duration::seconds(3)).is_infinite());
  EXPECT_TRUE((Duration::seconds(3) + Duration::infinite()).is_infinite());

  Time t = Time::infinite();
  t += 250_us;
  EXPECT_TRUE(t.is_infinite());

  Duration d = Duration::infinite();
  d += 1_ns;
  EXPECT_TRUE(d.is_infinite());

  // Plain overflow past the sentinel saturates too (any sum beyond
  // INT64_MAX *is* "never"), and stays ordered against finite values.
  const Duration almost = Duration::infinite() - 1_ns;
  EXPECT_TRUE((almost + 2_ns).is_infinite());
  EXPECT_LT(Time::zero() + 5_ms, Time::infinite() + 1_ms);

  // Finite arithmetic is untouched.
  EXPECT_EQ((1_ms + 2_ms).us(), 3000);
  Time u = Time::zero();
  u += 7_ms;
  EXPECT_EQ((u - Time::zero()).ms(), 7);
}

TEST(Time, DurationRatio) {
  EXPECT_DOUBLE_EQ(10_ms / 2_ms, 5.0);
  EXPECT_DOUBLE_EQ((1_s * 0.25).to_seconds(), 0.25);
}

TEST(Time, FormattingPicksUnits) {
  EXPECT_EQ((12_us).to_string(), "12.000us");
  EXPECT_EQ((3_ms).to_string(), "3.000ms");
  EXPECT_EQ(Duration::infinite().to_string(), "inf");
}

TEST(EventLoop, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(Time::zero() + 3_ms, [&] { order.push_back(3); });
  loop.schedule_at(Time::zero() + 1_ms, [&] { order.push_back(1); });
  loop.schedule_at(Time::zero() + 2_ms, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), Time::zero() + 3_ms);
}

TEST(EventLoop, SameInstantRunsInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(Time::zero() + 1_ms, [&, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventLoop, PastSchedulesClampToNow) {
  EventLoop loop;
  bool ran = false;
  loop.schedule_at(Time::zero() + 5_ms, [&] {
    loop.schedule_at(Time::zero() + 1_ms, [&] {
      ran = true;
      EXPECT_EQ(loop.now(), Time::zero() + 5_ms);
    });
  });
  loop.run();
  EXPECT_TRUE(ran);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  auto handle = loop.schedule_after(1_ms, [&] { ran = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  loop.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(loop.pending_count(), 0u);
}

TEST(EventLoop, CancelIsIdempotentAndSafeAfterRun) {
  EventLoop loop;
  auto handle = loop.schedule_after(1_ms, [] {});
  loop.run();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // must not crash or corrupt counts
  handle.cancel();
  EXPECT_EQ(loop.pending_count(), 0u);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int count = 0;
  loop.schedule_at(Time::zero() + 1_ms, [&] { ++count; });
  loop.schedule_at(Time::zero() + 10_ms, [&] { ++count; });
  loop.run_until(Time::zero() + 5_ms);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(loop.now(), Time::zero() + 5_ms);
  EXPECT_EQ(loop.pending_count(), 1u);
}

TEST(EventLoop, SelfReschedulingEventTerminatesWithRunUntil) {
  EventLoop loop;
  int fires = 0;
  std::function<void()> tick = [&] {
    ++fires;
    loop.schedule_after(1_ms, tick);
  };
  loop.schedule_after(1_ms, tick);
  loop.run_until(Time::zero() + 10_ms);
  EXPECT_EQ(fires, 10);
}

TEST(EventLoop, NextEventTimeSkipsCancelled) {
  EventLoop loop;
  auto a = loop.schedule_after(1_ms, [] {});
  loop.schedule_after(2_ms, [] {});
  a.cancel();
  EXPECT_EQ(loop.next_event_time(), Time::zero() + 2_ms);
}

TEST(EventLoop, SlabStressScheduleCancelReschedule) {
  // Hammer the slot slab: schedule 100k events across a wide horizon (both
  // wheel and overflow paths), cancel every third one, reschedule into the
  // freed slots, then run to completion. Exercises slot reuse, generation
  // bumps, and tombstone pruning at scale.
  EventLoop loop;
  constexpr int kEvents = 100'000;
  std::vector<EventHandle> handles;
  handles.reserve(kEvents);
  std::int64_t fired = 0;
  for (int i = 0; i < kEvents; ++i) {
    // Spread from microseconds to seconds so some land in the calendar
    // horizon and some in the far-future overflow structure.
    auto delay = Duration::micros(1 + (static_cast<std::int64_t>(i) * 37) %
                                          2'000'000);
    handles.push_back(loop.schedule_after(delay, [&] { ++fired; }));
  }
  int cancelled = 0;
  for (int i = 0; i < kEvents; i += 3) {
    handles[static_cast<std::size_t>(i)].cancel();
    ++cancelled;
  }
  EXPECT_EQ(loop.pending_count(),
            static_cast<std::size_t>(kEvents - cancelled));
  // Refill the freed slots; the old handles must stay inert.
  for (int i = 0; i < cancelled; ++i) {
    loop.schedule_after(Duration::micros(10 + i), [&] { ++fired; });
  }
  loop.run();
  EXPECT_EQ(fired, kEvents);  // survivors + refills, none double-fired
  EXPECT_EQ(loop.pending_count(), 0u);
}

TEST(EventLoop, StaleHandlesFromReusedSlotsAreInert) {
  // A handle whose slot was freed and re-acquired by a newer event must not
  // cancel (or otherwise affect) the new occupant.
  EventLoop loop;
  int first = 0, second = 0;
  auto a = loop.schedule_after(1_ms, [&] { ++first; });
  a.cancel();  // frees the slot
  // Likely reuses a's slot with a bumped generation.
  loop.schedule_after(2_ms, [&] { ++second; });
  EXPECT_FALSE(a.pending());
  a.cancel();  // stale: must be a no-op against the new occupant
  loop.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);

  // Same pattern after the event RAN (not just cancelled).
  int third = 0, fourth = 0;
  auto b = loop.schedule_after(1_ms, [&] { ++third; });
  loop.run();
  EXPECT_EQ(third, 1);
  loop.schedule_after(1_ms, [&] { ++fourth; });
  EXPECT_FALSE(b.pending());
  b.cancel();  // stale after run: also a no-op
  loop.run();
  EXPECT_EQ(fourth, 1);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0, 1'000'000), b.uniform(0, 1'000'000));
  }
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng root(7);
  Rng a = root.fork(1);
  Rng b = root.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0, 1 << 30) == b.uniform(0, 1 << 30)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NormalDurationRespectsFloor) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    auto d = rng.normal_duration(10_us, 100_us, Duration::zero());
    EXPECT_GE(d, Duration::zero());
  }
}

TEST(Rng, ExponentialDurationRespectsCap) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    auto d = rng.exponential_duration(50_us, 200_us);
    EXPECT_GE(d, Duration::zero());
    EXPECT_LE(d, 200_us);
  }
}

TEST(Rng, ExponentialMeanIsRoughlyRight) {
  Rng rng(99);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.exponential_duration(100_us).to_micros();
  }
  EXPECT_NEAR(sum / n, 100.0, 5.0);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(3);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

}  // namespace
}  // namespace quicsteps::sim
