// Unit tests for the kernel model: OS timing draws, user-space timers, GSO
// buffer construction, NIC expansion/LaunchTime, and the UDP socket.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "kernel/gso.hpp"
#include "kernel/nic.hpp"
#include "kernel/os_model.hpp"
#include "kernel/timer_service.hpp"
#include "kernel/udp_socket.hpp"
#include "net/wire_tap.hpp"
#include "sim/event_loop.hpp"

namespace quicsteps::kernel {
namespace {

using namespace quicsteps::sim::literals;
using net::CollectorSink;
using net::DataRate;
using net::Packet;
using sim::Duration;
using sim::EventLoop;
using sim::Time;

Packet make_packet(std::uint64_t id, std::int64_t size = 1500) {
  Packet p;
  p.id = id;
  p.size_bytes = size;
  return p;
}

/// make_gso_buffer takes the shared buffer the socket pools; tests build
/// one directly.
std::shared_ptr<std::vector<Packet>> share(std::vector<Packet> segs) {
  return std::make_shared<std::vector<Packet>>(std::move(segs));
}

OsTimingConfig quiet_os() {
  OsTimingConfig cfg;
  cfg.hrtimer_slack_mean = Duration::zero();
  cfg.hrtimer_slack_stddev = Duration::zero();
  cfg.softirq_delay_chance = 0.0;
  cfg.syscall_jitter_mean = Duration::zero();
  cfg.wakeup_latency_mean = Duration::zero();
  cfg.wakeup_latency_stddev = Duration::zero();
  return cfg;
}

TEST(OsModel, SyscallCostAtLeastBase) {
  OsModel os({}, sim::Rng(1));
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(os.draw_syscall_cost(), os.config().syscall_base);
  }
}

TEST(OsModel, QuietConfigIsDeterministic) {
  OsModel os(quiet_os(), sim::Rng(1));
  EXPECT_EQ(os.draw_syscall_cost(), os.config().syscall_base);
  EXPECT_EQ(os.draw_kernel_release_delay(), Duration::zero());
  EXPECT_EQ(os.draw_wakeup_latency(), Duration::zero());
}

TEST(TimerService, NoGranularityFiresAtRequestPlusSlackOnly) {
  EventLoop loop;
  OsModel os(quiet_os(), sim::Rng(1));
  TimerService timers(loop, os, {.slack_max = Duration::zero()});
  Time fired;
  timers.arm(Time::zero() + 5_ms, [&] { fired = loop.now(); });
  loop.run();
  EXPECT_EQ(fired, Time::zero() + 5_ms);
}

TEST(TimerService, GranularityRoundsUp) {
  EventLoop loop;
  OsModel os(quiet_os(), sim::Rng(1));
  TimerService timers(loop, os,
                      {.granularity = 10_ms, .slack_max = Duration::zero()});
  Time fired;
  // Asking for +3 ms with 10 ms granularity fires at +10 ms.
  timers.arm(Time::zero() + 3_ms, [&] { fired = loop.now(); });
  loop.run();
  EXPECT_EQ(fired, Time::zero() + 10_ms);
}

TEST(TimerService, ExactGranuleMultipleDoesNotRoundUpAnExtraGranule) {
  EventLoop loop;
  OsModel os(quiet_os(), sim::Rng(1));
  TimerService timers(loop, os,
                      {.granularity = 10_ms, .slack_max = Duration::zero()});
  Time fired;
  timers.arm(Time::zero() + 20_ms, [&] { fired = loop.now(); });
  loop.run();
  EXPECT_EQ(fired, Time::zero() + 20_ms);
}

TEST(TimerService, InfiniteDeadlineIsNeverRoundedOrSlacked) {
  // Time::infinite() is the idle "never fires" sentinel. Granularity
  // rounding must not move it (the old ceil, `req + g - 1`, wrapped
  // int64 for it) and the slack draw saturates at the sentinel.
  EventLoop loop;
  OsModel os(quiet_os(), sim::Rng(1));
  TimerService timers(loop, os, {.granularity = 10_ms, .slack_max = 2_ms});
  EXPECT_TRUE(timers.adjusted_fire_time(Time::infinite()).is_infinite());
}

TEST(TimerService, FarFutureDeadlineRoundsWithoutWrapping) {
  // ~146 simulated years out: the ceiling is computed div-then-round, so
  // the granule count never transits through `req + g - 1`.
  EventLoop loop;
  OsModel os(quiet_os(), sim::Rng(1));
  TimerService timers(loop, os,
                      {.granularity = 10_ms, .slack_max = Duration::zero()});
  const Time far = Time::from_ns(std::int64_t{1} << 62);
  const Time fire = timers.adjusted_fire_time(far);
  EXPECT_GE(fire, far);
  EXPECT_LT(fire, far + 10_ms);
  EXPECT_EQ(fire.ns() % (10_ms).ns(), 0);
}

TEST(TimerService, CancelWorks) {
  EventLoop loop;
  OsModel os(quiet_os(), sim::Rng(1));
  TimerService timers(loop, os, {});
  bool ran = false;
  auto handle = timers.arm(Time::zero() + 5_ms, [&] { ran = true; });
  handle.cancel();
  loop.run();
  EXPECT_FALSE(ran);
}

TEST(Gso, BufferAggregatesSizesAndIndexesSegments) {
  std::vector<Packet> segs;
  for (int i = 0; i < 4; ++i) segs.push_back(make_packet(i, 1200));
  Packet carrier = make_gso_buffer(share(std::move(segs)), 7,
                                   DataRate::megabits_per_second(40));
  EXPECT_EQ(carrier.size_bytes, 4800);
  EXPECT_EQ(carrier.gso_segment_count, 4u);
  EXPECT_TRUE(carrier.is_gso_buffer());
  ASSERT_NE(carrier.gso_segments, nullptr);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ((*carrier.gso_segments)[i].gso_segment_index, i);
    EXPECT_EQ((*carrier.gso_segments)[i].gso_buffer_id, 7u);
  }
}

TEST(Gso, CarrierInheritsFirstSegmentTxtime) {
  std::vector<Packet> segs{make_packet(1), make_packet(2)};
  segs[0].has_txtime = true;
  segs[0].txtime = Time::zero() + 9_ms;
  Packet carrier = make_gso_buffer(share(std::move(segs)), 1, DataRate::zero());
  EXPECT_TRUE(carrier.has_txtime);
  EXPECT_EQ(carrier.txtime, Time::zero() + 9_ms);
}

class NicTest : public ::testing::Test {
 protected:
  EventLoop loop;
  OsModel os{quiet_os(), sim::Rng(1)};
  CollectorSink sink;
};

TEST_F(NicTest, SerializesAtLineRate) {
  Nic nic(loop, {.line_rate = DataRate::gigabits_per_second(1)}, os, &sink);
  net::WireTap tap(loop, &sink);
  nic.set_downstream(&tap);
  nic.deliver(make_packet(1));
  nic.deliver(make_packet(2));
  loop.run();
  ASSERT_EQ(tap.capture().size(), 2u);
  EXPECT_EQ((tap.capture()[1].wire_time - tap.capture()[0].wire_time).us(),
            12);
}

TEST_F(NicTest, StockGsoExpandsBackToBack) {
  Nic nic(loop, {.line_rate = DataRate::gigabits_per_second(1)}, os, &sink);
  net::WireTap tap(loop, &sink);
  nic.set_downstream(&tap);
  std::vector<Packet> segs;
  for (int i = 0; i < 8; ++i) segs.push_back(make_packet(i, 1500));
  nic.deliver(make_gso_buffer(share(std::move(segs)), 1, DataRate::zero()));
  loop.run();
  ASSERT_EQ(tap.capture().size(), 8u);
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_EQ(
        (tap.capture()[i].wire_time - tap.capture()[i - 1].wire_time).us(),
        12);  // line-rate back-to-back: the burst the paper shows
  }
}

TEST_F(NicTest, PacedGsoSpreadsSegments) {
  Nic nic(loop, {.line_rate = DataRate::gigabits_per_second(1)}, os, &sink);
  net::WireTap tap(loop, &sink);
  nic.set_downstream(&tap);
  std::vector<Packet> segs;
  for (int i = 0; i < 8; ++i) segs.push_back(make_packet(i, 1500));
  // Paced-GSO patch: 40 Mbit/s pacing rate -> 300 us between segments.
  nic.deliver(
      make_gso_buffer(share(std::move(segs)), 1, DataRate::megabits_per_second(40)));
  loop.run();
  ASSERT_EQ(tap.capture().size(), 8u);
  for (std::size_t i = 1; i < 8; ++i) {
    const auto gap = tap.capture()[i].wire_time - tap.capture()[i - 1].wire_time;
    EXPECT_NEAR(gap.to_micros(), 300.0, 1.0);
  }
}

TEST_F(NicTest, LaunchTimeHoldsEarlyPackets) {
  Nic nic(loop,
          {.line_rate = DataRate::gigabits_per_second(1),
           .launch_time = true,
           .launch_jitter_max = Duration::zero()},
          os, &sink);
  net::WireTap tap(loop, &sink);
  nic.set_downstream(&tap);
  Packet p = make_packet(1);
  p.has_txtime = true;
  p.txtime = Time::zero() + 5_ms;
  nic.deliver(p);  // arrives early (now = 0)
  loop.run();
  ASSERT_EQ(tap.capture().size(), 1u);
  EXPECT_EQ(tap.capture()[0].wire_time, Time::zero() + 5_ms + 12_us);
}

TEST_F(NicTest, LaunchTimeDisabledSendsImmediately) {
  Nic nic(loop, {.launch_time = false}, os, &sink);
  net::WireTap tap(loop, &sink);
  nic.set_downstream(&tap);
  Packet p = make_packet(1);
  p.has_txtime = true;
  p.txtime = Time::zero() + 5_ms;
  nic.deliver(p);
  loop.run();
  EXPECT_LT(tap.capture()[0].wire_time, Time::zero() + 1_ms);
}

TEST(UdpSocket, SendmsgStampsKernelEntryAndCharges) {
  EventLoop loop;
  OsModel os(quiet_os(), sim::Rng(1));
  CollectorSink sink;
  UdpSocket socket(loop, os, &sink);
  loop.run_until(Time::zero() + 1_ms);
  const Duration cost = socket.sendmsg(make_packet(1));
  EXPECT_EQ(cost, os.config().syscall_base);
  ASSERT_EQ(sink.packets().size(), 1u);
  EXPECT_EQ(sink.packets()[0].kernel_entry_time, Time::zero() + 1_ms);
  EXPECT_EQ(socket.syscalls(), 1u);
}

TEST(UdpSocket, GsoSendIsOneSyscall) {
  EventLoop loop;
  OsModel os(quiet_os(), sim::Rng(1));
  CollectorSink sink;
  UdpSocket socket(loop, os, &sink);
  std::vector<Packet> segs;
  for (int i = 0; i < 16; ++i) segs.push_back(make_packet(i));
  socket.sendmsg_gso(std::move(segs), DataRate::zero());
  EXPECT_EQ(socket.syscalls(), 1u);
  ASSERT_EQ(sink.packets().size(), 1u);
  EXPECT_TRUE(sink.packets()[0].is_gso_buffer());
}

TEST(UdpSocket, SendmmsgKeepsPacketsSeparate) {
  EventLoop loop;
  OsModel os(quiet_os(), sim::Rng(1));
  CollectorSink sink;
  UdpSocket socket(loop, os, &sink);
  std::vector<Packet> pkts;
  for (int i = 0; i < 5; ++i) pkts.push_back(make_packet(i));
  socket.sendmmsg(std::move(pkts));
  EXPECT_EQ(socket.syscalls(), 1u);
  EXPECT_EQ(sink.packets().size(), 5u);  // separate skbs, paceable by qdisc
  EXPECT_FALSE(sink.packets()[0].is_gso_buffer());
}

TEST(UdpReceiver, EnforcesReceiveBuffer) {
  EventLoop loop;
  OsModel os(quiet_os(), sim::Rng(1));
  int received = 0;
  UdpReceiver receiver(loop, os, 3000, [&](Packet) { ++received; });
  // Quiet OS = zero wakeup latency, but delivery is still via an event, so
  // three back-to-back datagrams exceed the 2-packet buffer.
  receiver.deliver(make_packet(1));
  receiver.deliver(make_packet(2));
  receiver.deliver(make_packet(3));
  loop.run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(receiver.counters().packets_dropped, 1);
}

}  // namespace
}  // namespace quicsteps::kernel
