// Unit tests for the congestion controllers: NewReno growth/reduction,
// CUBIC epoch math and rollback mechanism, HyStart++ phases, and the BBR
// state machine across flavors.
#include <gtest/gtest.h>

#include "cc/bbr.hpp"
#include "cc/cc_factory.hpp"
#include "cc/cubic.hpp"
#include "cc/hystart_pp.hpp"
#include "cc/new_reno.hpp"

namespace quicsteps::cc {
namespace {

using namespace quicsteps::sim::literals;
using net::DataRate;
using sim::Duration;
using sim::Time;

AckSample ack_at(Time now, std::int64_t bytes, Time sent_time,
                 std::uint64_t pn = 0) {
  AckSample a;
  a.now = now;
  a.acked_bytes = bytes;
  a.largest_acked_pn = pn;
  a.largest_acked_sent_time = sent_time;
  a.latest_rtt = 40_ms;
  a.smoothed_rtt = 40_ms;
  a.min_rtt = 40_ms;
  a.bytes_in_flight = 1 << 20;  // "cwnd-limited" unless a test overrides
  return a;
}

LossSample loss_at(Time now, std::int64_t packets, Time sent_time) {
  LossSample l;
  l.now = now;
  l.lost_packets = packets;
  l.lost_bytes = packets * kMaxDatagramSize;
  l.largest_lost_sent_time = sent_time;
  return l;
}

// ---------------------------------------------------------------- NewReno

TEST(NewReno, SlowStartDoublesPerRtt) {
  NewReno reno;
  const auto start = reno.cwnd_bytes();
  reno.on_ack(ack_at(Time::zero() + 40_ms, start, Time::zero() + 1_ms));
  EXPECT_EQ(reno.cwnd_bytes(), 2 * start);
  EXPECT_TRUE(reno.in_slow_start());
}

TEST(NewReno, LossHalvesAndSetsSsthresh) {
  NewReno reno;
  reno.on_ack(ack_at(Time::zero() + 40_ms, 10 * kMaxDatagramSize,
                     Time::zero() + 1_ms));
  const auto before = reno.cwnd_bytes();
  reno.on_loss(loss_at(Time::zero() + 50_ms, 3, Time::zero() + 45_ms));
  EXPECT_EQ(reno.cwnd_bytes(), before / 2);
  EXPECT_EQ(reno.ssthresh_bytes(), before / 2);
  EXPECT_FALSE(reno.in_slow_start());
}

TEST(NewReno, OnlyOneReductionPerRecoveryPeriod) {
  NewReno reno;
  reno.on_loss(loss_at(Time::zero() + 50_ms, 1, Time::zero() + 45_ms));
  const auto after_first = reno.cwnd_bytes();
  // Second loss of a packet sent BEFORE recovery began: no new reduction.
  reno.on_loss(loss_at(Time::zero() + 55_ms, 1, Time::zero() + 46_ms));
  EXPECT_EQ(reno.cwnd_bytes(), after_first);
  // Loss of a packet sent after recovery began: fresh congestion event.
  reno.on_loss(loss_at(Time::zero() + 100_ms, 1, Time::zero() + 90_ms));
  EXPECT_LT(reno.cwnd_bytes(), after_first);
}

TEST(NewReno, CongestionAvoidanceGrowsLinearly) {
  NewReno reno;
  reno.on_loss(loss_at(Time::zero() + 50_ms, 1, Time::zero() + 45_ms));
  const auto cwnd = reno.cwnd_bytes();
  // One full cwnd of acked bytes in CA adds ~1 MSS.
  reno.on_ack(ack_at(Time::zero() + 100_ms, cwnd, Time::zero() + 60_ms));
  EXPECT_NEAR(static_cast<double>(reno.cwnd_bytes()),
              static_cast<double>(cwnd + kMaxDatagramSize),
              static_cast<double>(kMaxDatagramSize) / 2);
}

TEST(NewReno, PersistentCongestionCollapsesWindow) {
  NewReno reno;
  auto l = loss_at(Time::zero() + 50_ms, 10, Time::zero() + 45_ms);
  l.persistent_congestion = true;
  reno.on_loss(l);
  EXPECT_EQ(reno.cwnd_bytes(), kMinimumWindow);
}

TEST(NewReno, NoGrowthDuringRecovery) {
  NewReno reno;
  reno.on_loss(loss_at(Time::zero() + 50_ms, 1, Time::zero() + 45_ms));
  const auto cwnd = reno.cwnd_bytes();
  // ACK for a packet sent before recovery started: ignored.
  reno.on_ack(ack_at(Time::zero() + 60_ms, cwnd, Time::zero() + 40_ms));
  EXPECT_EQ(reno.cwnd_bytes(), cwnd);
}

// ------------------------------------------------------------------ CUBIC

Cubic::Config cubic_no_hystart() {
  Cubic::Config cfg;
  cfg.hystart = false;
  return cfg;
}

TEST(CubicTest, SlowStartGrowsByAckedBytes) {
  Cubic cubic(cubic_no_hystart());
  const auto start = cubic.cwnd_bytes();
  cubic.on_ack(ack_at(Time::zero() + 40_ms, start, Time::zero() + 1_ms));
  EXPECT_EQ(cubic.cwnd_bytes(), 2 * start);
}

TEST(CubicTest, LossAppliesBeta) {
  Cubic cubic(cubic_no_hystart());
  cubic.on_ack(ack_at(Time::zero() + 40_ms, 20 * kMaxDatagramSize,
                      Time::zero() + 1_ms));
  const auto before = cubic.cwnd_bytes();
  cubic.on_loss(loss_at(Time::zero() + 50_ms, 3, Time::zero() + 45_ms));
  EXPECT_EQ(cubic.cwnd_bytes(),
            static_cast<std::int64_t>(static_cast<double>(before) * 0.7));
  EXPECT_EQ(cubic.congestion_events(), 1);
}

TEST(CubicTest, WindowRecoversTowardWmax) {
  // After a reduction, the concave region must grow cwnd back toward w_max.
  Cubic cubic(cubic_no_hystart());
  cubic.on_ack(ack_at(Time::zero() + 40_ms, 40 * kMaxDatagramSize,
                      Time::zero() + 1_ms));
  const auto w_max = cubic.cwnd_bytes();
  cubic.on_loss(loss_at(Time::zero() + 50_ms, 3, Time::zero() + 45_ms));
  const auto floor = cubic.cwnd_bytes();
  Time t = Time::zero() + 100_ms;
  for (int i = 0; i < 400; ++i) {
    cubic.on_ack(ack_at(t, kMaxDatagramSize, t - 40_ms));
    t += 10_ms;
  }
  EXPECT_GT(cubic.cwnd_bytes(), floor);
  // Fast convergence pulled w_max down to cwnd*(1+beta)/2; after 4 seconds
  // of growth the window must have at least reached that reduced w_max.
  EXPECT_GT(cubic.cwnd_bytes(),
            static_cast<std::int64_t>(0.8 * static_cast<double>(w_max)));
}

TEST(CubicTest, GrowthIsCubicNotLinear) {
  // The increase over [K, K+dt] accelerates: compare early vs late growth
  // after a congestion event.
  Cubic cubic(cubic_no_hystart());
  cubic.on_ack(ack_at(Time::zero() + 40_ms, 60 * kMaxDatagramSize,
                      Time::zero() + 1_ms));
  cubic.on_loss(loss_at(Time::zero() + 50_ms, 3, Time::zero() + 45_ms));
  Time t = Time::zero() + 100_ms;
  std::int64_t w0 = cubic.cwnd_bytes();
  for (int i = 0; i < 50; ++i) {
    cubic.on_ack(ack_at(t, kMaxDatagramSize, t - 40_ms));
    t += 20_ms;
  }
  const std::int64_t early_growth = cubic.cwnd_bytes() - w0;
  w0 = cubic.cwnd_bytes();
  for (int i = 0; i < 50; ++i) {
    t += 20_ms;
    cubic.on_ack(ack_at(t, kMaxDatagramSize, t - 40_ms));
  }
  const std::int64_t late_growth = cubic.cwnd_bytes() - w0;
  // Early growth (concave approach to w_max) exceeds mid growth near the
  // plateau, OR late convex growth exceeds the plateau growth — either way
  // the two segments must differ materially, which linear growth wouldn't.
  EXPECT_NE(early_growth / kMaxDatagramSize, late_growth / kMaxDatagramSize);
}

TEST(CubicTest, CwndValidationFreezesOnlyInCongestionAvoidance) {
  Cubic::Config cfg = cubic_no_hystart();
  cfg.require_cwnd_limited_growth = true;
  Cubic cubic(cfg);
  // Slow start is exempt: the window must still grow while app-limited.
  const auto start = cubic.cwnd_bytes();
  auto ss = ack_at(Time::zero() + 40_ms, kMaxDatagramSize, Time::zero() + 1_ms);
  ss.bytes_in_flight = 0;
  cubic.on_ack(ss);
  EXPECT_GT(cubic.cwnd_bytes(), start);
  // Enter congestion avoidance via a loss, then a pacing-limited ACK
  // (almost nothing in flight) must not grow the window — ngtcp2's
  // Table 1 freeze.
  cubic.on_loss(loss_at(Time::zero() + 50_ms, 3, Time::zero() + 45_ms));
  const auto ca_cwnd = cubic.cwnd_bytes();
  auto ca = ack_at(Time::zero() + 100_ms, kMaxDatagramSize,
                   Time::zero() + 60_ms);
  ca.bytes_in_flight = 0;
  cubic.on_ack(ca);
  EXPECT_EQ(cubic.cwnd_bytes(), ca_cwnd);
  // A cwnd-limited ACK does grow it.
  auto limited = ack_at(Time::zero() + 140_ms, kMaxDatagramSize,
                        Time::zero() + 100_ms);
  limited.bytes_in_flight = cubic.cwnd_bytes();
  cubic.on_ack(limited);
  EXPECT_GT(cubic.cwnd_bytes(), ca_cwnd);
}

TEST(CubicTest, RollbackRestoresCheckpointOnSmallLoss) {
  Cubic::Config cfg = cubic_no_hystart();
  cfg.spurious_loss_rollback = true;
  cfg.rollback_threshold_packets = 5;
  Cubic cubic(cfg);
  cubic.on_ack(ack_at(Time::zero() + 40_ms, 30 * kMaxDatagramSize,
                      Time::zero() + 1_ms));
  const auto before = cubic.cwnd_bytes();
  // A 2-packet loss (below threshold) reduces the window...
  cubic.on_loss(loss_at(Time::zero() + 50_ms, 2, Time::zero() + 45_ms));
  EXPECT_LT(cubic.cwnd_bytes(), before);
  // ...but the next ACK for a post-recovery packet rolls it back.
  cubic.on_ack(
      ack_at(Time::zero() + 90_ms, kMaxDatagramSize, Time::zero() + 60_ms));
  EXPECT_EQ(cubic.cwnd_bytes(), before);
  EXPECT_EQ(cubic.rollbacks_performed(), 1);
}

TEST(CubicTest, NoRollbackOnLargeLoss) {
  Cubic::Config cfg = cubic_no_hystart();
  cfg.spurious_loss_rollback = true;
  cfg.rollback_threshold_packets = 5;
  Cubic cubic(cfg);
  cubic.on_ack(ack_at(Time::zero() + 40_ms, 30 * kMaxDatagramSize,
                      Time::zero() + 1_ms));
  const auto before = cubic.cwnd_bytes();
  cubic.on_loss(loss_at(Time::zero() + 50_ms, 20, Time::zero() + 45_ms));
  cubic.on_ack(
      ack_at(Time::zero() + 90_ms, kMaxDatagramSize, Time::zero() + 60_ms));
  EXPECT_LT(cubic.cwnd_bytes(), before);
  EXPECT_EQ(cubic.rollbacks_performed(), 0);
}

TEST(CubicTest, RollbackDisabledBySfPatch) {
  Cubic::Config cfg = cubic_no_hystart();
  cfg.spurious_loss_rollback = false;  // the paper's SF patch
  Cubic cubic(cfg);
  cubic.on_ack(ack_at(Time::zero() + 40_ms, 30 * kMaxDatagramSize,
                      Time::zero() + 1_ms));
  const auto before = cubic.cwnd_bytes();
  cubic.on_loss(loss_at(Time::zero() + 50_ms, 2, Time::zero() + 45_ms));
  cubic.on_ack(
      ack_at(Time::zero() + 90_ms, kMaxDatagramSize, Time::zero() + 60_ms));
  EXPECT_LT(cubic.cwnd_bytes(), before);
  EXPECT_EQ(cubic.rollbacks_performed(), 0);
}

TEST(CubicTest, PerpetualRollbackOscillation) {
  // The pathological cycle from the paper's Appendix A: small loss ->
  // reduce -> rollback -> small loss -> ... The window must oscillate
  // between two values instead of converging.
  Cubic::Config cfg = cubic_no_hystart();
  cfg.spurious_loss_rollback = true;
  Cubic cubic(cfg);
  cubic.on_ack(ack_at(Time::zero() + 40_ms, 30 * kMaxDatagramSize,
                      Time::zero() + 1_ms));
  const auto high = cubic.cwnd_bytes();
  Time t = Time::zero() + 100_ms;
  for (int cycle = 0; cycle < 10; ++cycle) {
    cubic.on_loss(loss_at(t, 2, t - 5_ms));
    const auto low = cubic.cwnd_bytes();
    EXPECT_LT(low, high);
    t += 40_ms;
    cubic.on_ack(ack_at(t, kMaxDatagramSize, t - 10_ms));
    EXPECT_EQ(cubic.cwnd_bytes(), high) << "cycle " << cycle;
    t += 40_ms;
  }
  EXPECT_EQ(cubic.rollbacks_performed(), 10);
}

// -------------------------------------------------------------- HyStart++

TEST(HystartPP, StaysInSlowStartWithFlatRtt) {
  HystartPP hs;
  for (int round = 0; round < 10; ++round) {
    hs.on_round_start();
    for (int i = 0; i < 8; ++i) hs.on_rtt_sample(40_ms);
  }
  EXPECT_EQ(hs.phase(), HystartPP::Phase::kSlowStart);
}

TEST(HystartPP, EntersCssOnRttInflation) {
  HystartPP hs;
  hs.on_round_start();
  for (int i = 0; i < 8; ++i) hs.on_rtt_sample(40_ms);
  hs.on_round_start();
  for (int i = 0; i < 8; ++i) hs.on_rtt_sample(60_ms);  // +50% >> eta
  EXPECT_EQ(hs.phase(), HystartPP::Phase::kCss);
  EXPECT_EQ(hs.growth_divisor(), 4);
}

TEST(HystartPP, CssConfirmsAfterFiveRounds) {
  HystartPP hs;
  hs.on_round_start();
  for (int i = 0; i < 8; ++i) hs.on_rtt_sample(40_ms);
  for (int round = 0; round < 7; ++round) {
    hs.on_round_start();
    for (int i = 0; i < 8; ++i) hs.on_rtt_sample(60_ms);
    if (hs.done()) break;
  }
  EXPECT_TRUE(hs.done());
}

TEST(HystartPP, CssRevertsWhenRttDeflates) {
  HystartPP hs;
  hs.on_round_start();
  for (int i = 0; i < 8; ++i) hs.on_rtt_sample(40_ms);
  hs.on_round_start();
  for (int i = 0; i < 8; ++i) hs.on_rtt_sample(60_ms);
  ASSERT_EQ(hs.phase(), HystartPP::Phase::kCss);
  hs.on_round_start();
  for (int i = 0; i < 8; ++i) hs.on_rtt_sample(40_ms);  // back to baseline
  EXPECT_EQ(hs.phase(), HystartPP::Phase::kSlowStart);
}

TEST(HystartPP, CongestionEventEndsIt) {
  HystartPP hs;
  hs.on_congestion_event();
  EXPECT_TRUE(hs.done());
}

// -------------------------------------------------------------------- BBR

AckSample bbr_ack(Time now, std::int64_t bytes, std::uint64_t pn,
                  DataRate bw, Duration rtt = 40_ms) {
  AckSample a;
  a.now = now;
  a.acked_bytes = bytes;
  a.largest_acked_pn = pn;
  a.largest_acked_sent_time = now - rtt;
  a.latest_rtt = rtt;
  a.smoothed_rtt = rtt;
  a.min_rtt = rtt;
  a.bandwidth_sample = bw;
  a.bytes_in_flight = 0;
  return a;
}

TEST(BbrTest, StartsInStartupWithHighGain) {
  Bbr bbr;
  EXPECT_EQ(bbr.state(), Bbr::State::kStartup);
  EXPECT_TRUE(bbr.in_slow_start());
  EXPECT_TRUE(bbr.has_own_pacing_rate());
}

TEST(BbrTest, ExitsStartupWhenBandwidthPlateaus) {
  Bbr bbr;
  Time t = Time::zero();
  std::uint64_t pn = 0;
  const auto bw = DataRate::megabits_per_second(40);
  // Feed identical bandwidth samples across many rounds: growth stalls.
  for (int round = 0; round < 8 && bbr.state() == Bbr::State::kStartup;
       ++round) {
    t += 40_ms;
    bbr.on_packet_sent(t, ++pn, 1500, 0);
    bbr.on_ack(bbr_ack(t, 1500, pn, bw));
  }
  EXPECT_NE(bbr.state(), Bbr::State::kStartup);
}

TEST(BbrTest, InfiniteBandwidthSampleStillExitsStartup) {
  // A zero-duration delivery interval yields DataRate::infinite() — the
  // 1 << 62 sentinel. The 25% growth test multiplies full_bw by 5, which
  // wraps int64 at the sentinel; it runs in __int128 so the plateau
  // detection keeps working and startup still exits after three
  // no-growth rounds.
  Bbr bbr;
  Time t = Time::zero();
  std::uint64_t pn = 0;
  bbr.on_packet_sent(t + 40_ms, ++pn, 1500, 0);
  bbr.on_ack(bbr_ack(t + 40_ms, 1500, pn, DataRate::infinite()));
  for (int round = 0; round < 8 && bbr.state() == Bbr::State::kStartup;
       ++round) {
    t += 40_ms;
    bbr.on_packet_sent(t, ++pn, 1500, 0);
    bbr.on_ack(bbr_ack(t, 1500, pn, DataRate::megabits_per_second(40)));
  }
  EXPECT_NE(bbr.state(), Bbr::State::kStartup);
}

TEST(BbrTest, PacingRateTracksBandwidthTimesGain) {
  Bbr bbr;
  Time t = Time::zero() + 40_ms;
  bbr.on_packet_sent(t, 1, 1500, 0);
  bbr.on_ack(bbr_ack(t, 1500, 1, DataRate::megabits_per_second(40)));
  EXPECT_NEAR(bbr.pacing_rate().mbps(), 40.0 * 2.885, 1.0);
}

TEST(BbrTest, BandwidthFilterKeepsWindowedMax) {
  Bbr bbr;
  Time t = Time::zero();
  std::uint64_t pn = 0;
  bbr.on_packet_sent(t + 40_ms, ++pn, 1500, 0);
  bbr.on_ack(bbr_ack(t + 40_ms, 1500, pn, DataRate::megabits_per_second(50)));
  bbr.on_packet_sent(t + 80_ms, ++pn, 1500, 0);
  bbr.on_ack(bbr_ack(t + 80_ms, 1500, pn, DataRate::megabits_per_second(30)));
  EXPECT_NEAR(bbr.bottleneck_bandwidth().mbps(), 50.0, 0.1);
}

TEST(BbrTest, AppLimitedSamplesOnlyRaise) {
  Bbr bbr;
  Time t = Time::zero();
  std::uint64_t pn = 0;
  bbr.on_packet_sent(t + 40_ms, ++pn, 1500, 0);
  bbr.on_ack(bbr_ack(t + 40_ms, 1500, pn, DataRate::megabits_per_second(50)));
  auto low = bbr_ack(t + 80_ms, 1500, pn + 1,
                     DataRate::megabits_per_second(10));
  low.app_limited = true;
  bbr.on_packet_sent(t + 80_ms, ++pn, 1500, 0);
  bbr.on_ack(low);
  EXPECT_NEAR(bbr.bottleneck_bandwidth().mbps(), 50.0, 0.1);
}

TEST(BbrTest, V1IgnoresLoss) {
  Bbr bbr({.flavor = BbrFlavor::kV1});
  const auto cwnd = bbr.cwnd_bytes();
  bbr.on_loss(loss_at(Time::zero() + 50_ms, 10, Time::zero() + 45_ms));
  EXPECT_EQ(bbr.cwnd_bytes(), cwnd);
}

TEST(BbrTest, LossCappedReducesOnLoss) {
  Bbr bbr({.flavor = BbrFlavor::kLossCapped});
  Time t = Time::zero() + 40_ms;
  bbr.on_packet_sent(t, 1, 1500, 0);
  auto a = bbr_ack(t, 100 * 1500, 1, DataRate::megabits_per_second(40));
  bbr.on_ack(a);
  const auto before = bbr.cwnd_bytes();
  bbr.on_loss(loss_at(t + 10_ms, 5, t + 5_ms));
  EXPECT_LT(bbr.cwnd_bytes(), before);
}

TEST(BbrTest, V2LiteExitsStartupOnLoss) {
  Bbr bbr({.flavor = BbrFlavor::kV2Lite});
  ASSERT_EQ(bbr.state(), Bbr::State::kStartup);
  bbr.on_loss(loss_at(Time::zero() + 50_ms, 3, Time::zero() + 45_ms));
  // Startup is now marked full; the next ACK moves the state machine on.
  Time t = Time::zero() + 90_ms;
  bbr.on_packet_sent(t, 1, 1500, 0);
  bbr.on_ack(bbr_ack(t, 1500, 1, DataRate::megabits_per_second(40)));
  EXPECT_NE(bbr.state(), Bbr::State::kStartup);
}

TEST(BbrTest, ProbeRttEntersAfterWindowExpiry) {
  Bbr::Config cfg;
  cfg.min_rtt_window = 1_s;  // shorten for the test
  Bbr bbr(cfg);
  Time t = Time::zero();
  std::uint64_t pn = 0;
  const auto bw = DataRate::megabits_per_second(40);
  bool seen_probe_rtt = false;
  for (int i = 0; i < 100; ++i) {
    t += 40_ms;
    bbr.on_packet_sent(t, ++pn, 1500, 0);
    bbr.on_ack(bbr_ack(t, 1500, pn, bw));
    if (bbr.state() == Bbr::State::kProbeRtt) {
      seen_probe_rtt = true;
      EXPECT_EQ(bbr.cwnd_bytes(), 4 * kMaxDatagramSize);
      break;
    }
  }
  EXPECT_TRUE(seen_probe_rtt);
}

TEST(BbrTest, ProbeBwCyclesGains) {
  Bbr bbr;
  Time t = Time::zero();
  std::uint64_t pn = 0;
  const auto bw = DataRate::megabits_per_second(40);
  double max_rate = 0.0, min_rate = 1e18;
  for (int i = 0; i < 60; ++i) {
    t += 40_ms;
    bbr.on_packet_sent(t, ++pn, 1500, 0);
    bbr.on_ack(bbr_ack(t, 1500, pn, bw));
    if (bbr.state() == Bbr::State::kProbeBw) {
      max_rate = std::max(max_rate, bbr.pacing_rate().mbps());
      min_rate = std::min(min_rate, bbr.pacing_rate().mbps());
    }
  }
  // The 1.25 and 0.75 phases must both have been visited.
  EXPECT_GT(max_rate, 40.0 * 1.2);
  EXPECT_LT(min_rate, 40.0 * 0.8);
}

// ---------------------------------------------------------------- factory

TEST(Factory, BuildsEachAlgorithm) {
  EXPECT_STREQ(make_controller({.algorithm = CcAlgorithm::kNewReno})->name(),
               "newreno");
  EXPECT_STREQ(make_controller({.algorithm = CcAlgorithm::kCubic})->name(),
               "cubic");
  EXPECT_STREQ(make_controller({.algorithm = CcAlgorithm::kBbr})->name(),
               "bbr");
}

TEST(Factory, InitialWindowPerRfc9002) {
  auto cc = make_controller({});
  EXPECT_EQ(cc->cwnd_bytes(), kInitialWindow);
}

}  // namespace
}  // namespace quicsteps::cc
