// Correctness-tooling tests: audit-failure injection (a non-conserving
// qdisc, a backwards timestamp stream), the determinism hasher, sorted
// counter emission, and the serial == parallel wire-hash gate.
#include <sstream>

#include <gtest/gtest.h>

#include "core/quicsteps.hpp"

namespace quicsteps {
namespace {

using framework::ExperimentConfig;
using framework::ParallelRunner;
using framework::Runner;
using framework::StackKind;

/// Redirects audit failures into a list for the lifetime of the test (the
/// default handler aborts the process, which is the right behavior
/// everywhere except here).
class AuditCaptureTest : public ::testing::Test {
 protected:
  AuditCaptureTest() {
    check::set_audit_handler([this](const check::AuditFailure& failure) {
      failures_.push_back(failure.to_string());
    });
  }
  ~AuditCaptureTest() override { check::set_audit_handler({}); }

  std::vector<std::string> failures_;
};

// ----------------------------------------------------------- audit spine

TEST_F(AuditCaptureTest, AuditFailReportsThroughInstalledHandler) {
  check::audit_fail("f.cpp", 7, "x == y", "books off");
  ASSERT_EQ(failures_.size(), 1u);
  EXPECT_NE(failures_[0].find("books off"), std::string::npos);
  EXPECT_NE(failures_[0].find("x == y"), std::string::npos);
  EXPECT_NE(failures_[0].find("f.cpp:7"), std::string::npos);
}

TEST_F(AuditCaptureTest, MonotonicityAuditorAcceptsOrderedStream) {
  check::MonotonicityAuditor monotone("test stream");
  EXPECT_TRUE(monotone.observe(0));
  EXPECT_TRUE(monotone.observe(5));
  EXPECT_TRUE(monotone.observe(5));  // equal timestamps are legal
  EXPECT_TRUE(monotone.observe(100));
  EXPECT_TRUE(failures_.empty());
}

TEST_F(AuditCaptureTest, BackwardsEventTripsMonotonicityAudit) {
  check::MonotonicityAuditor monotone("event execution time");
  monotone.observe(1000);
  EXPECT_FALSE(monotone.observe(999));  // scheduled into the past
  ASSERT_EQ(failures_.size(), 1u);
  EXPECT_NE(failures_[0].find("went backwards"), std::string::npos);
  EXPECT_NE(failures_[0].find("event execution time"), std::string::npos);
}

// ------------------------------------------------- conservation auditor

/// Deliberately non-conserving qdisc: every packet is accepted and then
/// silently eaten — neither forwarded, nor dropped, nor queued.
class BlackHoleQdisc final : public kernel::Qdisc {
 public:
  BlackHoleQdisc(sim::EventLoop& loop, net::PacketSink* downstream)
      : Qdisc(loop, "blackhole", downstream) {}
  void deliver(net::Packet pkt) override { note_arrival(pkt); }
};

net::Packet test_packet(std::int64_t bytes = 1500) {
  net::Packet pkt;
  pkt.flow = 1;
  pkt.size_bytes = bytes;
  return pkt;
}

TEST_F(AuditCaptureTest, NonConservingQdiscTripsConservationAuditor) {
  sim::EventLoop loop;
  BlackHoleQdisc blackhole(loop, nullptr);
  check::ConservationAuditor auditor;
  auditor.add_stage("blackhole", blackhole.counters(),
                    [] { return std::int64_t{0}; });  // claims empty queue

  for (int i = 0; i < 3; ++i) blackhole.deliver(test_packet());

  const auto violations = auditor.audit();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("blackhole"), std::string::npos);
  EXPECT_NE(violations[0].find("disagrees with live queue depth"),
            std::string::npos);
  // audit() funnels every violation through the installed handler too.
  EXPECT_EQ(failures_.size(), violations.size());
}

TEST_F(AuditCaptureTest, LossOnSynchronousEdgeTripsConservationAuditor) {
  net::Counters upstream;
  net::Counters downstream;
  for (int i = 0; i < 5; ++i) {
    upstream.count_in(1500);
    upstream.count_out(1500);
  }
  // Downstream only booked 3 of the 5 hand-offs.
  for (int i = 0; i < 3; ++i) downstream.count_in(1500);

  check::ConservationAuditor auditor;
  const auto up = auditor.add_stage("tbf", upstream);
  const auto down = auditor.add_stage("netem", downstream);
  auditor.add_edge(up, down);

  const auto violations = auditor.violations();
  ASSERT_EQ(violations.size(), 2u);  // packets and bytes both off
  EXPECT_NE(violations[0].find("tbf -> netem"), std::string::npos);
  EXPECT_NE(violations[0].find("packets lost"), std::string::npos);
  EXPECT_NE(violations[1].find("bytes lost"), std::string::npos);
}

TEST_F(AuditCaptureTest, BalancedBooksProduceNoViolations) {
  net::Counters c;
  c.count_in(1500);
  c.count_in(1500);
  c.count_out(1500);
  c.count_drop(1500);
  check::ConservationAuditor auditor;
  auditor.add_stage("clean", c, [] { return std::int64_t{0}; });
  EXPECT_TRUE(auditor.violations().empty());
  EXPECT_TRUE(failures_.empty());
}

TEST_F(AuditCaptureTest, ForwardingUncountedPacketTripsQdiscAudit) {
  if constexpr (!check::kAuditEnabled) {
    GTEST_SKIP() << "built with -DQUICSTEPS_AUDIT=OFF";
  }
  // A qdisc that emits a packet it never booked in drives its implied
  // backlog negative; the QUICSTEPS_AUDIT() hook in Qdisc::forward fires
  // on the spot, without waiting for a post-run audit.
  class DuplicatingQdisc final : public kernel::Qdisc {
   public:
    DuplicatingQdisc(sim::EventLoop& loop)
        : Qdisc(loop, "duper", nullptr) {}
    void deliver(net::Packet pkt) override {
      note_arrival(pkt);
      forward(pkt);
      forward(std::move(pkt));  // duplicate: one in, two out
    }
  };
  sim::EventLoop loop;
  DuplicatingQdisc duper(loop);
  duper.deliver(test_packet());
  ASSERT_EQ(failures_.size(), 1u);
  EXPECT_NE(failures_[0].find("never enqueued"), std::string::npos);
}

// ------------------------------------------------------- event loop hooks

TEST_F(AuditCaptureTest, EventLoopAuditsStaySilentOnLegalWorkloads) {
  sim::EventLoop loop;
  using namespace sim::literals;
  int ran = 0;
  for (int i = 0; i < 100; ++i) {
    loop.schedule_after(sim::Duration::micros(i * 37 % 500), [&] { ++ran; });
  }
  auto cancelled = loop.schedule_after(1_ms, [&] { ++ran; });
  cancelled.cancel();
  // Past-scheduled events clamp to now() — legal, must not trip audits.
  loop.schedule_at(sim::Time::zero() - sim::Duration::millis(1),
                   [&] { ++ran; });
  loop.run();
  EXPECT_EQ(ran, 101);
  EXPECT_TRUE(failures_.empty());
}

// ------------------------------------------------------------ hashing

TEST(DeterminismHasher, MatchesReferenceFnv1a) {
  // Independent FNV-1a reference over the same byte stream.
  const std::uint64_t values[] = {0u, 1u, 0xdeadbeefu, ~std::uint64_t{0}};
  std::uint64_t expected = 14695981039346656037ull;
  for (std::uint64_t v : values) {
    for (int i = 0; i < 8; ++i) {
      expected ^= (v >> (8 * i)) & 0xffu;
      expected *= 1099511628211ull;
    }
  }
  check::DeterminismHasher hasher;
  for (std::uint64_t v : values) hasher.add_u64(v);
  EXPECT_EQ(hasher.digest(), expected);
  EXPECT_EQ(hasher.count(), 4u);
  EXPECT_EQ(hasher.to_string().size(), 16u);
}

TEST(DeterminismHasher, OrderSensitive) {
  check::DeterminismHasher ab;
  ab.add_u64(1);
  ab.add_u64(2);
  check::DeterminismHasher ba;
  ba.add_u64(2);
  ba.add_u64(1);
  EXPECT_NE(ab.digest(), ba.digest());
}

// ------------------------------------------------- deterministic emission

TEST(CountersTable, EmitsSortedRegardlessOfRegistrationOrder) {
  net::Counters a;
  a.count_in(100);
  net::Counters b;
  b.count_in(200);
  net::Counters c;
  c.count_in(300);

  net::CountersTable forward;
  forward.add("alpha", a);
  forward.add("mid", b);
  forward.add("zeta", c);
  net::CountersTable reverse;
  reverse.add("zeta", c);
  reverse.add("mid", b);
  reverse.add("alpha", a);

  EXPECT_EQ(forward.to_string(), reverse.to_string());
  ASSERT_EQ(reverse.rows().size(), 3u);
  EXPECT_EQ(reverse.rows()[0].first, "alpha");
  EXPECT_EQ(reverse.rows()[2].first, "zeta");
  EXPECT_EQ(forward.to_string().find("alpha"), 0u);
}

// ------------------------------------------------------ determinism gate

ExperimentConfig hash_config(StackKind stack, std::uint64_t seed) {
  ExperimentConfig config;
  config.label = to_string(stack);
  config.stack = stack;
  config.payload_bytes = 1ll * 1024 * 1024;  // keep the grid fast
  config.repetitions = 1;
  config.seed = seed;
  return config;
}

TEST(DeterminismHash, SerialEqualsParallelAcrossStacksAndSeeds) {
  // The paper's figures are functions of departure timestamps, so this is
  // THE determinism gate: for every stack and >= 3 seeds, the parallel
  // worker pool must produce byte-for-byte the timestamp stream a serial
  // run produces — compressed to one FNV-1a digest per run.
  std::vector<ExperimentConfig> grid;
  for (auto stack : {StackKind::kQuiche, StackKind::kQuicheSf,
                     StackKind::kPicoquic, StackKind::kNgtcp2,
                     StackKind::kTcpTls, StackKind::kIdealQuic}) {
    for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
      grid.push_back(hash_config(stack, seed));
    }
  }

  const auto parallel = ParallelRunner(4).run_grid(grid);

  ASSERT_EQ(parallel.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    ASSERT_EQ(parallel[i].size(), 1u);
    const auto serial = Runner::run_once(grid[i], grid[i].seed);
    SCOPED_TRACE(grid[i].label + " seed " + std::to_string(grid[i].seed));
    EXPECT_NE(serial.wire_hash, 0u);
    EXPECT_EQ(parallel[i][0].wire_hash, serial.wire_hash);
  }

  // Different seeds actually produce different timestamp streams — the
  // hash would be useless if it collapsed them.
  EXPECT_NE(parallel[0][0].wire_hash, parallel[1][0].wire_hash);
}

TEST(DeterminismHash, BatchedEqualsLegacyAcrossStacksAndSeeds) {
  // The batched datapath (drain trains + packet slab) must be a pure
  // mechanical transformation: for every stack and seed, the wire-hash of
  // a batched run equals the legacy closure-per-packet run bit for bit.
  // Drain records share the loop's sequence counter and every RNG draw
  // stays at its original call site, so any divergence here is a bug in
  // the conversion, not an accepted behavior change.
  std::vector<ExperimentConfig> grid;
  for (auto stack : {StackKind::kQuiche, StackKind::kQuicheSf,
                     StackKind::kPicoquic, StackKind::kNgtcp2,
                     StackKind::kTcpTls, StackKind::kIdealQuic}) {
    for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
      grid.push_back(hash_config(stack, seed));
    }
  }

  const auto batched = ParallelRunner(4).run_grid(grid);

  ASSERT_EQ(batched.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    ASSERT_EQ(batched[i].size(), 1u);
    ExperimentConfig legacy_config = grid[i];
    legacy_config.topology.batched_datapath = false;
    const auto legacy = Runner::run_once(legacy_config, legacy_config.seed);
    SCOPED_TRACE(grid[i].label + " seed " + std::to_string(grid[i].seed));
    EXPECT_NE(legacy.wire_hash, 0u);
    EXPECT_EQ(batched[i][0].wire_hash, legacy.wire_hash);
  }
}

TEST(DeterminismHash, TracedRunsExportByteIdenticalSerialVsParallel) {
  if (!obs::kTraceEnabled) {
    GTEST_SKIP() << "built with -DQUICSTEPS_TRACE=OFF";
  }
  // Path tracing must not perturb the schedule (wire_hash unchanged by
  // --trace) and the exported artifacts themselves must be reproducible
  // bytes: the parallel worker pool and a serial run of the same
  // (config, seed) write identical path-qlog JSONL and CSV.
  for (std::uint64_t seed : {1ull, 7ull}) {
    auto config = hash_config(StackKind::kQuicheSf, seed);
    const auto untraced = Runner::run_once(config, seed);
    config.trace = true;
    const auto serial = Runner::run_once(config, seed);
    const auto parallel = ParallelRunner(4).run_all(config);
    SCOPED_TRACE("seed " + std::to_string(seed));
    ASSERT_EQ(parallel.size(), 1u);
    EXPECT_EQ(serial.wire_hash, untraced.wire_hash);
    EXPECT_EQ(serial.wire_hash, parallel[0].wire_hash);
    ASSERT_NE(serial.trace, nullptr);
    ASSERT_NE(parallel[0].trace, nullptr);
    std::ostringstream serial_qlog, parallel_qlog, serial_csv, parallel_csv;
    framework::write_path_qlog(serial_qlog, serial, config.label);
    framework::write_path_qlog(parallel_qlog, parallel[0], config.label);
    framework::write_path_trace_csv(serial_csv, serial);
    framework::write_path_trace_csv(parallel_csv, parallel[0]);
    EXPECT_GT(serial_qlog.str().size(), 1000u);
    EXPECT_EQ(serial_qlog.str(), parallel_qlog.str());
    EXPECT_EQ(serial_csv.str(), parallel_csv.str());
  }
}

TEST(DeterminismHash, RepeatedRunsPinTheSameDigest) {
  const auto config = hash_config(StackKind::kQuiche, 3);
  const auto a = Runner::run_once(config, 3);
  const auto b = Runner::run_once(config, 3);
  EXPECT_EQ(a.wire_hash, b.wire_hash);
}

}  // namespace
}  // namespace quicsteps
