// Tests for the stack behavioral models: profile construction, the
// event-loop disciplines (txtime vs waiting), GSO batching, and the
// signature wire behaviors each profile exists to produce.
#include <gtest/gtest.h>

#include "kernel/qdisc_fq.hpp"
#include "net/wire_tap.hpp"
#include "stacks/event_loop_model.hpp"
#include "stacks/stack_profile.hpp"

namespace quicsteps::stacks {
namespace {

using namespace quicsteps::sim::literals;
using net::DataRate;
using net::Packet;
using sim::Duration;
using sim::EventLoop;
using sim::Time;

TEST(Profiles, QuicheUsesTxtimeAndInterval) {
  auto p = quiche_profile({});
  EXPECT_TRUE(p.pass_txtime);
  EXPECT_FALSE(p.app_waits_for_pacer);
  EXPECT_EQ(p.pacer.kind, pacing::PacerKind::kInterval);
  EXPECT_TRUE(p.cc.spurious_loss_rollback);
}

TEST(Profiles, SfPatchDisablesRollback) {
  auto p = quiche_profile({.sf_patch = true});
  EXPECT_FALSE(p.cc.spurious_loss_rollback);
  EXPECT_EQ(p.name, "quiche-sf");
}

TEST(Profiles, PicoquicUsesLeakyBucket) {
  auto p = picoquic_profile({});
  EXPECT_EQ(p.pacer.kind, pacing::PacerKind::kLeakyBucket);
  EXPECT_TRUE(p.app_waits_for_pacer);
  // Loss-based: deep bucket (the 16-17 packet train cap).
  EXPECT_EQ(p.pacer.bucket_depth_bytes, 16 * 1500);
  EXPECT_GT(p.loop_busy_cycle, Duration::zero());
}

TEST(Profiles, PicoquicBbrUsesShallowBucketAndFineTimers) {
  auto p = picoquic_profile({.cca = cc::CcAlgorithm::kBbr});
  EXPECT_LT(p.pacer.bucket_depth_bytes, 4 * 1500);
  EXPECT_EQ(p.loop_busy_cycle, Duration::zero());
  EXPECT_EQ(p.pacer_timer.granularity, Duration::zero());
}

TEST(Profiles, Ngtcp2IsStrictAndFlowControlled) {
  auto p = ngtcp2_profile({});
  EXPECT_FALSE(p.pass_txtime);
  EXPECT_TRUE(p.app_waits_for_pacer);
  EXPECT_DOUBLE_EQ(p.pacing_rate_factor, 1.0);
  EXPECT_TRUE(p.cc.require_cwnd_limited_growth);
  EXPECT_GT(p.flow_control_credit, 0);
  EXPECT_EQ(p.cc.bbr_flavor, cc::BbrFlavor::kV1);
}

// ---- behavioral: drive a StackServer against a collector ------------------

struct ServerRig {
  EventLoop loop;
  kernel::OsModel os;
  net::CollectorSink sink;
  StackServer server;

  ServerRig(StackProfile profile, std::int64_t payload_bytes)
      : os({}, sim::Rng(7)),
        server(loop, os, std::move(profile),
               [&] {
                 quic::Connection::Config cfg;
                 cfg.total_payload_bytes = payload_bytes;
                 return cfg;
               }(),
               &sink) {}
};

TEST(StackServer, QuicheAttachesTxtimeToEveryPacket) {
  ServerRig rig(quiche_profile({}), 100 * quic::kPayloadPerDatagram);
  rig.server.start();
  rig.loop.run_until(Time::zero() + 10_ms);
  ASSERT_FALSE(rig.sink.packets().empty());
  for (const auto& pkt : rig.sink.packets()) {
    EXPECT_TRUE(pkt.has_txtime);
  }
}

TEST(StackServer, QuicheWritesWholeWindowImmediately) {
  // No qdisc: the initial window leaves as one burst (cwnd-limited, no
  // user-space waiting) — the "quiche does not pace itself" property.
  ServerRig rig(quiche_profile({}), 100 * quic::kPayloadPerDatagram);
  rig.server.start();
  rig.loop.run_until(Time::zero() + 1_ms);
  EXPECT_EQ(rig.sink.packets().size(), 10u);  // full initial window
}

TEST(StackServer, WaitingStackSpacesInitialWindowAfterRttSample) {
  // ngtcp2-style: before any RTT sample, pacing is unbounded (IW burst);
  // this test only checks the app produces data and honors cwnd.
  ServerRig rig(ngtcp2_profile({}), 100 * quic::kPayloadPerDatagram);
  rig.server.start();
  rig.loop.run_until(Time::zero() + 1_ms);
  EXPECT_EQ(rig.sink.packets().size(), 10u);
  EXPECT_FALSE(rig.sink.packets()[0].has_txtime);
}

TEST(StackServer, GsoBatchesIntoSuperPackets) {
  auto profile = quiche_profile(
      {.gso = kernel::GsoMode::kOn, .gso_segments = 8});
  ServerRig rig(std::move(profile), 100 * quic::kPayloadPerDatagram);
  rig.server.start();
  rig.loop.run_until(Time::zero() + 1_ms);
  ASSERT_FALSE(rig.sink.packets().empty());
  EXPECT_TRUE(rig.sink.packets()[0].is_gso_buffer());
  EXPECT_EQ(rig.sink.packets()[0].gso_segment_count, 8u);
  // One syscall per buffer, not per packet.
  EXPECT_LT(rig.server.stats().send_syscalls, 3u);
}

TEST(StackServer, PacedGsoCarriesRate) {
  auto profile = quiche_profile(
      {.gso = kernel::GsoMode::kPaced, .gso_segments = 8});
  ServerRig rig(std::move(profile), 200 * quic::kPayloadPerDatagram);
  rig.server.start();
  rig.loop.run_until(Time::zero() + 1_ms);
  // Initial buffers ship before an RTT sample -> rate may be zero; feed an
  // ACK so the pacing rate exists, then expect rated buffers.
  Packet ack;
  ack.kind = net::PacketKind::kQuicAck;
  auto payload = std::make_shared<net::TransportAck>();
  payload->blocks = {net::AckBlock{1, 10}};
  payload->ack_delay = Duration::zero();
  ack.ack = payload;
  rig.loop.run_until(Time::zero() + 40_ms);
  rig.server.on_datagram(ack);
  rig.loop.run_until(Time::zero() + 41_ms);
  bool saw_rated = false;
  for (const auto& pkt : rig.sink.packets()) {
    if (pkt.is_gso_buffer() && !pkt.gso_pacing_rate.is_zero()) {
      saw_rated = true;
    }
  }
  EXPECT_TRUE(saw_rated);
}

TEST(StackServer, CpuTimeTracksSyscalls) {
  ServerRig rig(quiche_profile({}), 50 * quic::kPayloadPerDatagram);
  rig.server.start();
  rig.loop.run_until(Time::zero() + 1_ms);
  EXPECT_GT(rig.server.stats().send_syscalls, 0u);
  EXPECT_GT(rig.server.stats().cpu_time, Duration::zero());
}

}  // namespace
}  // namespace quicsteps::stacks
