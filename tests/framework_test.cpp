// Framework integration and property tests: topology wiring, end-to-end
// experiments for every stack, aggregation, report rendering, and
// parameterized invariants (packet conservation, goodput ceilings,
// determinism) swept across stacks and seeds.
#include <gtest/gtest.h>

#include "core/quicsteps.hpp"

namespace quicsteps::framework {
namespace {

using namespace quicsteps::sim::literals;
using cc::CcAlgorithm;

ExperimentConfig quick_config(StackKind stack,
                              CcAlgorithm cca = CcAlgorithm::kCubic) {
  ExperimentConfig config;
  config.label = to_string(stack);
  config.stack = stack;
  config.cca = cca;
  config.payload_bytes = 2ll * 1024 * 1024;  // keep tests fast
  config.repetitions = 1;
  return config;
}

TEST(Topology, WiresDataPathThroughTap) {
  sim::EventLoop loop;
  sim::Rng rng(3);
  Topology topo(loop, {}, rng);
  int delivered = 0;
  topo.set_client_handler([&](net::Packet) { ++delivered; });
  net::Packet pkt;
  pkt.flow = 1;
  pkt.size_bytes = 1500;
  topo.server_egress()->deliver(pkt);
  loop.run();
  EXPECT_EQ(delivered, 1);
  ASSERT_EQ(topo.tap().capture().size(), 1u);
  // One-way latency ~20 ms plus serialization.
  EXPECT_GE(loop.now(), sim::Time::zero() + 20_ms);
  EXPECT_LT(loop.now(), sim::Time::zero() + 25_ms);
}

TEST(Topology, AckPathHasNoBottleneck) {
  sim::EventLoop loop;
  sim::Rng rng(3);
  Topology topo(loop, {}, rng);
  int delivered = 0;
  topo.set_server_handler([&](net::Packet) { ++delivered; });
  for (int i = 0; i < 100; ++i) {
    net::Packet ack;
    ack.kind = net::PacketKind::kQuicAck;
    ack.size_bytes = 60;
    topo.client_egress()->deliver(ack);
  }
  loop.run();
  EXPECT_EQ(delivered, 100);
}

TEST(Topology, QdiscSelection) {
  sim::EventLoop loop;
  sim::Rng rng(3);
  TopologyConfig cfg;
  cfg.server_qdisc = QdiscKind::kFq;
  Topology topo(loop, cfg, rng);
  EXPECT_EQ(topo.server_qdisc().name(), "fq");
}

TEST(Runner, RecordsCwndTraceWhenRequested) {
  auto config = quick_config(StackKind::kQuiche);
  config.record_cwnd_trace = true;
  auto result = Runner::run_once(config, 1);
  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.cwnd_trace.size(), 100u);
}

TEST(Aggregation, PoolsAcrossRepetitions) {
  auto config = quick_config(StackKind::kQuiche);
  config.repetitions = 2;
  auto runs = Runner::run_all(config);
  auto agg = aggregate("quiche", runs);
  EXPECT_EQ(agg.repetitions, 2);
  EXPECT_EQ(agg.completed, 2);
  EXPECT_EQ(static_cast<std::int64_t>(agg.pooled_gaps_ms.size()),
            static_cast<std::int64_t>(runs[0].gaps.gaps_ms.size()) +
                static_cast<std::int64_t>(runs[1].gaps.gaps_ms.size()));
  EXPECT_GT(agg.goodput_mbps.mean, 0.0);
}

TEST(Reports, RenderWithoutCrashing) {
  auto config = quick_config(StackKind::kQuiche);
  auto agg = aggregate("quiche", Runner::run_all(config));
  EXPECT_NE(render_goodput_table({agg}, "t").find("quiche"),
            std::string::npos);
  EXPECT_NE(render_gap_figure({agg}, "t").find("back-to-back"),
            std::string::npos);
  EXPECT_NE(render_train_figure({agg}, "t").find("<=5 pkts"),
            std::string::npos);
  EXPECT_NE(render_precision_table({agg}, "t").find("Precision"),
            std::string::npos);
}

TEST(Reports, CwndTraceRendering) {
  auto config = quick_config(StackKind::kQuiche);
  config.record_cwnd_trace = true;
  auto result = Runner::run_once(config, 1);
  auto out = render_cwnd_trace(result, "cwnd");
  EXPECT_NE(out.find("cwnd max"), std::string::npos);
}

// --------------------------------------------------- parallel execution

TEST(ParallelRunner, JobsResolutionOrder) {
  EXPECT_GE(ParallelRunner().jobs(), 1);   // env / hardware fallback
  EXPECT_EQ(ParallelRunner(1).jobs(), 1);  // explicit wins
  EXPECT_EQ(ParallelRunner(4).jobs(), 4);
}

TEST(ParallelRunner, GridIsBitIdenticalToSerial) {
  // The whole point of the worker pool: fanning a (config, seed) grid out
  // across threads must not change a single bit of any result. Compare a
  // 3-stack x 2-repetition grid against the serial reference loop.
  std::vector<ExperimentConfig> grid;
  for (auto stack : {StackKind::kQuicheSf, StackKind::kPicoquic,
                     StackKind::kTcpTls}) {
    auto config = quick_config(stack);
    config.repetitions = 2;
    config.seed = 10 + grid.size();
    grid.push_back(config);
  }

  auto parallel = ParallelRunner(4).run_grid(grid);

  ASSERT_EQ(parallel.size(), grid.size());
  for (std::size_t c = 0; c < grid.size(); ++c) {
    ASSERT_EQ(parallel[c].size(),
              static_cast<std::size_t>(grid[c].repetitions));
    for (int rep = 0; rep < grid[c].repetitions; ++rep) {
      const auto seed = grid[c].seed + static_cast<std::uint64_t>(rep);
      const auto serial = Runner::run_once(grid[c], seed);
      const auto& par = parallel[c][static_cast<std::size_t>(rep)];
      SCOPED_TRACE(grid[c].label + " rep " + std::to_string(rep));
      EXPECT_EQ(par.completed, serial.completed);
      EXPECT_EQ(par.packets_sent, serial.packets_sent);
      EXPECT_EQ(par.dropped_packets, serial.dropped_packets);
      EXPECT_EQ(par.packets_declared_lost, serial.packets_declared_lost);
      EXPECT_EQ(par.wire_data_packets, serial.wire_data_packets);
      EXPECT_EQ(par.wire_hash, serial.wire_hash);
      EXPECT_DOUBLE_EQ(par.goodput.goodput.mbps(),
                       serial.goodput.goodput.mbps());
      EXPECT_EQ(par.gaps.gaps_ms, serial.gaps.gaps_ms);
      EXPECT_EQ(par.trains.packets_by_length, serial.trains.packets_by_length);
      EXPECT_DOUBLE_EQ(par.precision.precision_ms,
                       serial.precision.precision_ms);
    }
  }
}

TEST(ParallelRunner, RunAllMatchesRunnerInterface) {
  auto config = quick_config(StackKind::kQuiche);
  config.repetitions = 2;
  auto pooled = ParallelRunner(2).run_all(config);
  auto reference = Runner::run_all(config);
  ASSERT_EQ(pooled.size(), reference.size());
  for (std::size_t i = 0; i < pooled.size(); ++i) {
    EXPECT_EQ(pooled[i].packets_sent, reference[i].packets_sent);
    EXPECT_EQ(pooled[i].gaps.gaps_ms, reference[i].gaps.gaps_ms);
  }
}

// ------------------------------------------------------ property sweeps

struct SweepParam {
  StackKind stack;
  CcAlgorithm cca;
  std::uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string name = to_string(info.param.stack);
  name += "_";
  name += cc::to_string(info.param.cca);
  name += "_seed";
  name += std::to_string(info.param.seed);
  for (auto& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

class ExperimentSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ExperimentSweep, InvariantsHold) {
  const auto& param = GetParam();
  auto config = quick_config(param.stack, param.cca);
  auto result = Runner::run_once(config, param.seed);

  // 1. The transfer completes within the generous deadline.
  EXPECT_TRUE(result.completed);

  // 2. Goodput never exceeds the payload share of the bottleneck rate.
  EXPECT_LE(result.goodput.goodput.mbps(), 40.0 * 1402.0 / 1500.0 + 0.1);
  EXPECT_GT(result.goodput.goodput.mbps(), 1.0);

  // 3. Wire conservation: every data packet the sender emitted reached the
  //    tap (the server-side qdisc path never drops in these configs).
  EXPECT_EQ(result.wire_data_packets, result.packets_sent);

  // 4. Retransmissions cover declared losses (spurious PTO probes may add
  //    a couple on top).
  EXPECT_GE(result.retransmissions, 0);
  EXPECT_GE(result.packets_sent, result.packets_declared_lost);

  // 5. Gap samples pair up with wire packets.
  EXPECT_EQ(static_cast<std::int64_t>(result.gaps.gaps_ms.size()),
            result.wire_data_packets - 1);

  // 6. Train accounting covers every wire packet exactly once.
  EXPECT_EQ(result.trains.total_packets, result.wire_data_packets);
  std::int64_t by_length = 0;
  for (auto& [len, packets] : result.trains.packets_by_length) {
    by_length += packets;
  }
  EXPECT_EQ(by_length, result.wire_data_packets);
}

TEST_P(ExperimentSweep, DeterministicForSameSeed) {
  const auto& param = GetParam();
  auto config = quick_config(param.stack, param.cca);
  auto a = Runner::run_once(config, param.seed);
  auto b = Runner::run_once(config, param.seed);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.dropped_packets, b.dropped_packets);
  EXPECT_DOUBLE_EQ(a.goodput.goodput.mbps(), b.goodput.goodput.mbps());
  EXPECT_EQ(a.gaps.gaps_ms, b.gaps.gaps_ms);
}

INSTANTIATE_TEST_SUITE_P(
    AllStacks, ExperimentSweep,
    ::testing::Values(
        SweepParam{StackKind::kQuiche, CcAlgorithm::kCubic, 1},
        SweepParam{StackKind::kQuiche, CcAlgorithm::kBbr, 2},
        SweepParam{StackKind::kQuicheSf, CcAlgorithm::kCubic, 3},
        SweepParam{StackKind::kPicoquic, CcAlgorithm::kCubic, 4},
        SweepParam{StackKind::kPicoquic, CcAlgorithm::kBbr, 5},
        SweepParam{StackKind::kPicoquic, CcAlgorithm::kNewReno, 6},
        SweepParam{StackKind::kNgtcp2, CcAlgorithm::kCubic, 7},
        SweepParam{StackKind::kTcpTls, CcAlgorithm::kCubic, 8},
        SweepParam{StackKind::kIdealQuic, CcAlgorithm::kCubic, 9}),
    param_name);

// Qdisc sweep: the transfer must complete under every server qdisc.
class QdiscSweep : public ::testing::TestWithParam<QdiscKind> {};

TEST_P(QdiscSweep, QuicheCompletesUnderEveryQdisc) {
  auto config = quick_config(StackKind::kQuicheSf);
  config.topology.server_qdisc = GetParam();
  auto result = Runner::run_once(config, 11);
  EXPECT_TRUE(result.completed) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllQdiscs, QdiscSweep,
                         ::testing::Values(QdiscKind::kFifo,
                                           QdiscKind::kFqCodel,
                                           QdiscKind::kFq, QdiscKind::kEtf,
                                           QdiscKind::kEtfOffload),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           for (auto& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

// Signature behaviors the profiles exist to reproduce.

TEST(Signatures, FqPacesQuicheTrains) {
  // quiche over FQ: txtime honored -> long trains become rare compared to
  // the default qdisc (paper Fig. 5).
  auto base = quick_config(StackKind::kQuicheSf);
  auto fq = base;
  fq.topology.server_qdisc = QdiscKind::kFq;
  auto r_base = Runner::run_once(base, 21);
  auto r_fq = Runner::run_once(fq, 21);
  EXPECT_GT(r_fq.trains.fraction_in_trains_up_to(5),
            r_base.trains.fraction_in_trains_up_to(5));
}

TEST(Signatures, PicoquicBbrPacesNearPerfectly) {
  // picoquic+BBR: paper's best user-space pacing — almost everything in
  // short trains without any kernel help.
  auto config = quick_config(StackKind::kPicoquic, CcAlgorithm::kBbr);
  auto result = Runner::run_once(config, 31);
  EXPECT_GT(result.trains.fraction_in_trains_up_to(3), 0.95);
}

TEST(Signatures, PicoquicCubicShowsBucketBursts) {
  auto config = quick_config(StackKind::kPicoquic, CcAlgorithm::kCubic);
  auto result = Runner::run_once(config, 41);
  // A visible share of packets rides in 16-18 packet trains.
  double burst_share = 0.0;
  for (auto& [len, packets] : result.trains.packets_by_length) {
    if (len >= 14 && len <= 20) {
      burst_share += static_cast<double>(packets);
    }
  }
  burst_share /= static_cast<double>(result.trains.total_packets);
  EXPECT_GT(burst_share, 0.15);
}

TEST(Signatures, Ngtcp2GoodputIsLowAndStable) {
  auto config = quick_config(StackKind::kNgtcp2);
  config.payload_bytes = 4ll * 1024 * 1024;
  auto a = Runner::run_once(config, 51);
  auto b = Runner::run_once(config, 52);
  EXPECT_LT(a.goodput.goodput.mbps(), 20.0);
  EXPECT_NEAR(a.goodput.goodput.mbps(), b.goodput.goodput.mbps(), 0.2);
}

TEST(Signatures, QuicheRollbackOscillatesUnderFq) {
  // quiche (rollback enabled) + FQ: small per-cycle losses stay under the
  // spurious threshold -> perpetual rollbacks (paper Fig. 5 / Fig. 7).
  auto config = quick_config(StackKind::kQuiche);
  config.topology.server_qdisc = QdiscKind::kFq;
  config.payload_bytes = 6ll * 1024 * 1024;
  auto result = Runner::run_once(config, 61);
  EXPECT_GE(result.cc_rollbacks, 2);
  // SF patch: same scenario, no rollbacks.
  auto sf = config;
  sf.stack = StackKind::kQuicheSf;
  auto sf_result = Runner::run_once(sf, 61);
  EXPECT_EQ(sf_result.cc_rollbacks, 0);
}

}  // namespace
}  // namespace quicsteps::framework
