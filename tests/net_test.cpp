// Unit tests for the network fabric: rate math, links, drop-tail buffering,
// and the wire tap.
#include <gtest/gtest.h>

#include <string>

#include "check/audit.hpp"
#include "net/data_rate.hpp"
#include "net/flow_table.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/wire_tap.hpp"
#include "sim/event_loop.hpp"

namespace quicsteps::net {
namespace {

using namespace quicsteps::sim::literals;
using sim::Duration;
using sim::EventLoop;
using sim::Time;

Packet make_packet(std::uint64_t id, std::int64_t size = 1500) {
  Packet p;
  p.id = id;
  p.size_bytes = size;
  return p;
}

TEST(DataRate, TransmitTimeMatchesHandMath) {
  // 1500 B at 1 Gbit/s = 12 us — the paper's minimum inter-packet gap.
  const auto rate = DataRate::gigabits_per_second(1);
  EXPECT_EQ(rate.transmit_time(1500).us(), 12);
  // 1500 B at 40 Mbit/s = 300 us.
  EXPECT_EQ(DataRate::megabits_per_second(40).transmit_time(1500).us(), 300);
}

TEST(DataRate, EdgeRates) {
  EXPECT_TRUE(DataRate::infinite().transmit_time(1'000'000).is_zero());
  EXPECT_TRUE(DataRate::zero().transmit_time(1).is_infinite());
  EXPECT_EQ(DataRate::zero().transmit_time(0), Duration::zero());
}

TEST(DataRate, BytesInInvertsTransmitTime) {
  const auto rate = DataRate::megabits_per_second(40);
  EXPECT_EQ(rate.bytes_in(300_us), 1500);
  EXPECT_EQ(rate.bytes_in(Duration::zero()), 0);
}

TEST(DataRate, BytesPerConstructsInverseRate) {
  const auto rate = DataRate::bytes_per(1500, 300_us);
  EXPECT_NEAR(rate.mbps(), 40.0, 0.01);
}

TEST(DataRate, Formatting) {
  EXPECT_EQ(DataRate::megabits_per_second(40).to_string(), "40.00Mbit/s");
  EXPECT_EQ(DataRate::gigabits_per_second(1).to_string(), "1.00Gbit/s");
}

TEST(Link, PureDelayPreservesSpacingAndOrder) {
  EventLoop loop;
  CollectorSink sink;
  Link link(loop, {.rate = DataRate::infinite(), .delay = 20_ms}, &sink);
  loop.schedule_at(Time::zero() + 1_ms,
                   [&] { link.deliver(make_packet(1)); });
  loop.schedule_at(Time::zero() + 2_ms,
                   [&] { link.deliver(make_packet(2)); });
  loop.run();
  ASSERT_EQ(sink.packets().size(), 2u);
  EXPECT_EQ(sink.packets()[0].id, 1u);
  EXPECT_EQ(loop.now(), Time::zero() + 22_ms);
}

TEST(Link, SerializationSpacesBackToBackPackets) {
  EventLoop loop;
  CollectorSink sink;
  std::vector<Time> arrivals;
  Link link(loop, {.rate = DataRate::gigabits_per_second(1)}, &sink);
  // Two 1500 B packets delivered at the same instant must leave 12 us apart.
  link.deliver(make_packet(1));
  link.deliver(make_packet(2));
  std::size_t events = 0;
  while (loop.run_one()) {
    if (sink.packets().size() > arrivals.size()) {
      arrivals.push_back(loop.now());
    }
    ++events;
  }
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ((arrivals[1] - arrivals[0]).us(), 12);
}

TEST(Link, DropTailWhenBufferFull) {
  EventLoop loop;
  CollectorSink sink;
  Link link(loop,
            {.rate = DataRate::megabits_per_second(1),
             .delay = Duration::zero(),
             .buffer_bytes = 3000},
            &sink);
  link.deliver(make_packet(1));
  link.deliver(make_packet(2));
  link.deliver(make_packet(3));  // exceeds the 3000 B buffer -> dropped
  loop.run();
  EXPECT_EQ(sink.packets().size(), 2u);
  EXPECT_EQ(link.counters().packets_dropped, 1);
  EXPECT_EQ(link.counters().packets_in, 3);
  EXPECT_EQ(link.counters().packets_queued(), 0);
}

TEST(Link, BufferSlotFreesAfterSerialization) {
  EventLoop loop;
  CollectorSink sink;
  Link link(loop,
            {.rate = DataRate::megabits_per_second(12),  // 1 ms per packet
             .delay = 100_ms,
             .buffer_bytes = 1500},
            &sink);
  link.deliver(make_packet(1));
  // While packet 1 serializes the buffer is full.
  link.deliver(make_packet(2));
  EXPECT_EQ(link.counters().packets_dropped, 1);
  // After serialization completes (1 ms) the buffer frees even though the
  // packet is still propagating (100 ms).
  loop.run_until(Time::zero() + 2_ms);
  link.deliver(make_packet(3));
  loop.run();
  EXPECT_EQ(sink.packets().size(), 2u);
}

TEST(WireTap, StampsWireTimeAndKeepsCopies) {
  EventLoop loop;
  CollectorSink sink;
  WireTap tap(loop, &sink);
  loop.schedule_at(Time::zero() + 7_ms, [&] { tap.deliver(make_packet(1)); });
  loop.run();
  ASSERT_EQ(tap.capture().size(), 1u);
  EXPECT_EQ(tap.capture()[0].wire_time, Time::zero() + 7_ms);
  ASSERT_EQ(sink.packets().size(), 1u);
  EXPECT_EQ(sink.packets()[0].wire_time, Time::zero() + 7_ms);
}

TEST(WireTap, LiveCallbackSeesEveryPacket) {
  EventLoop loop;
  WireTap tap(loop, nullptr);
  int seen = 0;
  tap.set_on_packet([&](const Packet&) { ++seen; });
  tap.deliver(make_packet(1));
  tap.deliver(make_packet(2));
  EXPECT_EQ(seen, 2);
}

TEST(Counters, ConservationArithmetic) {
  Counters c;
  c.count_in(100);
  c.count_in(100);
  c.count_out(100);
  c.count_drop(100);
  EXPECT_EQ(c.packets_queued(), 0);
  EXPECT_EQ(c.bytes_in, 200);
}

Packet make_flow_packet(std::uint32_t flow, std::uint64_t id = 1) {
  Packet p = make_packet(id);
  p.flow = flow;
  return p;
}

TEST(FlowTable, RoutesByFlowId) {
  FlowTableSink table;
  CollectorSink a;
  CollectorSink b;
  // Register out of order: lookup must not depend on insertion order.
  table.add_route(9, &b);
  table.add_route(7, &a);
  EXPECT_EQ(table.route_count(), 2u);

  table.deliver(make_flow_packet(7, 1));
  table.deliver(make_flow_packet(7, 2));  // exercises the last-hit cache
  table.deliver(make_flow_packet(9, 3));
  table.deliver(make_flow_packet(7, 4));  // cache miss after flow switch

  ASSERT_EQ(a.packets().size(), 3u);
  ASSERT_EQ(b.packets().size(), 1u);
  EXPECT_EQ(a.packets()[0].id, 1u);
  EXPECT_EQ(a.packets()[2].id, 4u);
  EXPECT_EQ(b.packets()[0].id, 3u);
}

TEST(FlowTable, DefaultRouteCatchesUnregisteredFlows) {
  FlowTableSink table;
  CollectorSink a;
  CollectorSink fallback;
  table.add_route(7, &a);
  table.set_default_route(&fallback);

  table.deliver(make_flow_packet(7, 1));
  table.deliver(make_flow_packet(42, 2));

  ASSERT_EQ(a.packets().size(), 1u);
  ASSERT_EQ(fallback.packets().size(), 1u);
  EXPECT_EQ(fallback.packets()[0].id, 2u);
}

TEST(FlowTable, UnregisteredFlowTripsAuditAndDrops) {
  if (!check::kAuditEnabled) GTEST_SKIP() << "audit compiled out";
  std::vector<std::string> failures;
  check::set_audit_handler([&failures](const check::AuditFailure& failure) {
    failures.push_back(failure.to_string());
  });

  FlowTableSink table;
  CollectorSink a;
  table.add_route(7, &a);
  table.deliver(make_flow_packet(42, 1));  // no route, no default

  check::set_audit_handler({});
  EXPECT_TRUE(a.packets().empty());
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].find("unregistered flow 42"), std::string::npos);
}

TEST(FlowTable, DuplicateRegistrationTripsAudit) {
  if (!check::kAuditEnabled) GTEST_SKIP() << "audit compiled out";
  std::vector<std::string> failures;
  check::set_audit_handler([&failures](const check::AuditFailure& failure) {
    failures.push_back(failure.to_string());
  });

  FlowTableSink table;
  CollectorSink first;
  CollectorSink second;
  table.add_route(7, &first);
  table.add_route(7, &second);

  check::set_audit_handler({});
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].find("registered twice"), std::string::npos);
}

TEST(FlowTable, BulkRegistrationRoutesLikeIncremental) {
  // The fabric-scale path: append out of order under begin_bulk, sort
  // once at finish_bulk, then route exactly as O(n)-insert tables do —
  // including the burst cache and the train-switch binary search.
  FlowTableSink table;
  std::vector<CollectorSink> sinks(64);
  table.begin_bulk(sinks.size());
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    // Reverse order with gaps: the sort at finish_bulk does the work.
    const std::uint32_t flow = static_cast<std::uint32_t>(
        10 + 3 * (sinks.size() - 1 - i));
    table.add_route(flow, &sinks[sinks.size() - 1 - i]);
  }
  table.finish_bulk();
  EXPECT_EQ(table.route_count(), sinks.size());

  for (std::size_t i = 0; i < sinks.size(); ++i) {
    const std::uint32_t flow = static_cast<std::uint32_t>(10 + 3 * i);
    table.deliver(make_flow_packet(flow, i));
    table.deliver(make_flow_packet(flow, 1000 + i));  // burst-cache hit
  }
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    ASSERT_EQ(sinks[i].packets().size(), 2u) << "sink " << i;
    EXPECT_EQ(sinks[i].packets()[0].id, i);
    EXPECT_EQ(sinks[i].packets()[1].id, 1000 + i);
  }
}

TEST(FlowTable, BulkDuplicateIsCaughtAtFinish) {
  if (!check::kAuditEnabled) GTEST_SKIP() << "audit compiled out";
  std::vector<std::string> failures;
  check::set_audit_handler([&failures](const check::AuditFailure& failure) {
    failures.push_back(failure.to_string());
  });

  FlowTableSink table;
  CollectorSink first;
  CollectorSink second;
  table.begin_bulk(2);
  table.add_route(7, &first);
  table.add_route(7, &second);  // not detectable until the sort
  EXPECT_TRUE(failures.empty());
  table.finish_bulk();

  check::set_audit_handler({});
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].find("registered twice"), std::string::npos);
}

TEST(FlowTable, LookupDuringBulkBuildTripsAudit) {
  if (!check::kAuditEnabled) GTEST_SKIP() << "audit compiled out";
  std::vector<std::string> failures;
  check::set_audit_handler([&failures](const check::AuditFailure& failure) {
    failures.push_back(failure.to_string());
  });

  FlowTableSink table;
  CollectorSink a;
  table.begin_bulk(1);
  table.add_route(7, &a);
  table.deliver(make_flow_packet(7, 1));  // table is unsorted mid-bulk

  check::set_audit_handler({});
  ASSERT_FALSE(failures.empty());
  EXPECT_NE(failures[0].find("bulk build"), std::string::npos);
  table.finish_bulk();
}

TEST(Packet, GsoBufferPredicate) {
  Packet p = make_packet(1);
  EXPECT_FALSE(p.is_gso_buffer());
  auto segs = std::make_shared<std::vector<Packet>>();
  segs->push_back(make_packet(2));
  p.gso_segments = segs;
  EXPECT_TRUE(p.is_gso_buffer());
}

}  // namespace
}  // namespace quicsteps::net
