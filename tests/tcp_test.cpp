// Unit + integration tests for the TCP/TLS baseline model: segment
// accounting, cumulative/SACK ACK processing, RACK-style loss rules,
// Karn's rule, RTO behavior, and an end-to-end transfer.
#include <gtest/gtest.h>

#include "net/link.hpp"
#include "tcp/tcp_client.hpp"
#include "tcp/tcp_connection.hpp"
#include "tcp/tcp_server.hpp"

namespace quicsteps::tcp {
namespace {

using namespace quicsteps::sim::literals;
using net::AckBlock;
using net::DataRate;
using net::Packet;
using net::TransportAck;
using sim::Duration;
using sim::EventLoop;
using sim::Time;

TcpConnection::Config small_transfer(std::int64_t segments = 50) {
  TcpConnection::Config cfg;
  cfg.total_payload_bytes = segments * kPayloadPerSegment;
  return cfg;
}

Packet tcp_ack(std::vector<AckBlock> blocks,
               Duration delay = Duration::zero()) {
  Packet pkt;
  pkt.kind = net::PacketKind::kTcpAck;
  pkt.size_bytes = kAckSegmentSize;
  auto ack = std::make_shared<TransportAck>();
  ack->blocks = std::move(blocks);
  ack->ack_delay = delay;
  pkt.ack = std::move(ack);
  return pkt;
}

TEST(TcpConnection, BuildsSequentialSegments) {
  TcpConnection conn(small_transfer());
  auto s0 = conn.build_segment(Time::zero());
  auto s1 = conn.build_segment(Time::zero());
  EXPECT_EQ(s0.packet_number, 0u);
  EXPECT_EQ(s1.packet_number, 1u);
  EXPECT_EQ(s1.stream_offset, kPayloadPerSegment);
  EXPECT_EQ(conn.bytes_in_flight(), s0.size_bytes + s1.size_bytes);
}

TEST(TcpConnection, CumulativeAckAdvancesCompletion) {
  TcpConnection conn(small_transfer(3));
  for (int i = 0; i < 3; ++i) conn.build_segment(Time::zero());
  EXPECT_FALSE(conn.transfer_complete());
  conn.on_ack_packet(tcp_ack({{0, 2}}), Time::zero() + 40_ms);
  EXPECT_TRUE(conn.transfer_complete());
  EXPECT_EQ(conn.bytes_in_flight(), 0);
}

TEST(TcpConnection, SackHoleDeclaredLostAfterDupThreshold) {
  TcpConnection conn(small_transfer());
  for (int i = 0; i < 8; ++i) conn.build_segment(Time::zero());
  // Cumulative 0..1, SACK 5..7: hole 2..4; seq 2,3,4 all >= 3 behind 7.
  conn.on_ack_packet(tcp_ack({{5, 7}, {0, 1}}), Time::zero() + 40_ms);
  EXPECT_EQ(conn.stats().segments_declared_lost, 3);
  // Lost segments queue for retransmission, oldest first, same sequence.
  auto retx = conn.build_segment(Time::zero() + 41_ms);
  EXPECT_EQ(retx.packet_number, 2u);
}

TEST(TcpConnection, RetransmissionJudgedOnlyByTime) {
  TcpConnection conn(small_transfer());
  for (int i = 0; i < 8; ++i) conn.build_segment(Time::zero());
  conn.on_ack_packet(tcp_ack({{5, 7}, {0, 1}}), Time::zero() + 40_ms);
  ASSERT_EQ(conn.stats().segments_declared_lost, 3);
  // Retransmit seq 2; newer SACKs must NOT instantly re-declare it lost.
  conn.build_segment(Time::zero() + 41_ms);
  conn.on_ack_packet(tcp_ack({{8, 8}, {0, 1}}), Time::zero() + 45_ms);
  EXPECT_EQ(conn.stats().segments_declared_lost, 3);  // unchanged
}

TEST(TcpConnection, KarnsRuleSkipsRetransmittedRttSamples) {
  TcpConnection conn(small_transfer());
  for (int i = 0; i < 8; ++i) conn.build_segment(Time::zero());
  conn.on_ack_packet(tcp_ack({{5, 7}, {0, 1}}), Time::zero() + 40_ms);
  const auto srtt_before = conn.rtt().smoothed();
  conn.build_segment(Time::zero() + 100_ms);  // retransmit seq 2
  // ACK covering only the retransmitted segment: no RTT update.
  conn.on_ack_packet(tcp_ack({{2, 2}}), Time::zero() + 900_ms);
  EXPECT_EQ(conn.rtt().smoothed(), srtt_before);
}

TEST(TcpConnection, RtoRetransmitsOldestAndBacksOff) {
  TcpConnection conn(small_transfer());
  conn.build_segment(Time::zero());
  const Time first_deadline = conn.next_timer_deadline();
  EXPECT_GE(first_deadline, Time::zero() + 200_ms);  // RTO_MIN
  conn.on_timer(first_deadline);
  EXPECT_EQ(conn.stats().rto_fired, 1);
  EXPECT_TRUE(conn.has_data_to_send());
  conn.build_segment(first_deadline);  // retransmit
  const Time second_deadline = conn.next_timer_deadline();
  EXPECT_GT(second_deadline - first_deadline,
            first_deadline - Time::zero());  // exponential backoff
}

TEST(TcpConnection, CongestionBlockedAtInitialWindow) {
  TcpConnection conn(small_transfer());
  int sent = 0;
  while (!conn.congestion_blocked() && sent < 100) {
    conn.build_segment(Time::zero());
    ++sent;
  }
  EXPECT_EQ(sent, 10);
}

struct TcpHarness {
  EventLoop loop;
  net::Link ack_link;
  TcpServer server;
  net::Link data_link;
  TcpClient client;

  net::CallbackSink to_client{
      [this](Packet pkt) { client.on_datagram(pkt); }};
  net::CallbackSink to_server{
      [this](Packet pkt) { server.on_datagram(pkt); }};

  explicit TcpHarness(std::int64_t payload, std::int64_t buffer_bytes = -1)
      : ack_link(loop, {.rate = DataRate::infinite(), .delay = 20_ms},
                 &to_server),
        server(loop,
               [&] {
                 TcpServer::Config cfg;
                 cfg.connection.total_payload_bytes = payload;
                 return cfg;
               }(),
               &data_link),
        data_link(loop,
                  {.rate = DataRate::megabits_per_second(40),
                   .delay = 20_ms,
                   .buffer_bytes = buffer_bytes},
                  &to_client),
        client(loop, {.expected_payload_bytes = payload, .ack = {}},
               &ack_link) {}
};

TEST(TcpEndToEnd, LosslessTransferCompletes) {
  const std::int64_t payload = 300 * kPayloadPerSegment;
  TcpHarness h(payload);
  h.server.start();
  h.loop.run_until(Time::zero() + 60_s);
  EXPECT_TRUE(h.client.complete());
  EXPECT_EQ(h.client.stats().payload_bytes_received, payload);
  EXPECT_EQ(h.server.connection().stats().segments_declared_lost, 0);
}

TEST(TcpEndToEnd, LossyBottleneckCompletesWithRetransmissions) {
  const std::int64_t payload = 600 * kPayloadPerSegment;
  TcpHarness h(payload, 20 * kSegmentSize);
  h.server.start();
  h.loop.run_until(Time::zero() + 120_s);
  EXPECT_TRUE(h.client.complete());
  EXPECT_GT(h.server.connection().stats().segments_retransmitted, 0);
  EXPECT_EQ(h.client.stats().payload_bytes_received, payload);
}

TEST(TcpEndToEnd, DuplicateTriggersImmediateAck) {
  // Covered implicitly by the lossy test completing; here verify the
  // counter moves when the same segment arrives twice.
  EventLoop loop;
  net::CollectorSink acks;
  TcpClient client(loop, {.expected_payload_bytes = 1 << 20, .ack = {}},
                   &acks);
  Packet seg;
  seg.kind = net::PacketKind::kTcpData;
  seg.packet_number = 0;
  seg.stream_offset = 0;
  seg.stream_length = kPayloadPerSegment;
  seg.size_bytes = kSegmentSize;
  client.on_datagram(seg);
  const auto before = acks.packets().size();
  client.on_datagram(seg);  // duplicate
  EXPECT_EQ(client.stats().duplicate_segments, 1);
  EXPECT_GT(acks.packets().size(), before);  // immediate dup-ACK
}

}  // namespace
}  // namespace quicsteps::tcp
