// Fleet telemetry unit tests: FlowSampler determinism, QuantileSketch
// accuracy/merge contracts, TimeSeries windowing semantics, and the
// HealthReport detectors + JSON shape. The end-to-end determinism gates
// (serial vs sharded byte identity at N=1000, sampled-trace wire-hash
// identity) live in tests/flows_test.cpp — this file owns the component
// contracts those gates compose.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/quicsteps.hpp"
#include "obs/flow_sampler.hpp"
#include "obs/health_report.hpp"
#include "obs/quantile_sketch.hpp"
#include "obs/time_series.hpp"

namespace quicsteps {
namespace {

using obs::FlowSampler;
using obs::HealthContext;
using obs::HealthReport;
using obs::QuantileSketch;
using obs::TimeSeries;
using sim::Duration;
using sim::Time;

// ------------------------------------------------------- FlowSampler

TEST(FlowSampler, DefaultAndRateOneSampleEverything) {
  EXPECT_TRUE(FlowSampler().sampled(0));
  EXPECT_TRUE(FlowSampler().sampled(12345));
  const FlowSampler one(7, 1);
  EXPECT_TRUE(one.sampled(0));
  EXPECT_TRUE(one.sampled(99));
}

TEST(FlowSampler, IsAPureFunctionOfSeedAndFlow) {
  const FlowSampler a(42, 16);
  const FlowSampler b(42, 16);
  for (std::uint32_t flow = 0; flow < 4096; ++flow) {
    EXPECT_EQ(a.sampled(flow), b.sampled(flow)) << flow;
  }
}

TEST(FlowSampler, HitsRoughlyOneInNAndSeedsDecorrelate) {
  const FlowSampler s(11, 100);
  int hits = 0;
  for (std::uint32_t flow = 0; flow < 100'000; ++flow) {
    hits += s.sampled(flow) ? 1 : 0;
  }
  // 1-in-100 over 100k flows: the splitmix mix should land near 1000.
  EXPECT_GT(hits, 700);
  EXPECT_LT(hits, 1300);

  // Different seeds pick different subsets (not merely shifted).
  const FlowSampler t(12, 100);
  int overlap = 0;
  for (std::uint32_t flow = 0; flow < 100'000; ++flow) {
    overlap += (s.sampled(flow) && t.sampled(flow)) ? 1 : 0;
  }
  EXPECT_LT(overlap, hits / 2);
}

// ---------------------------------------------------- QuantileSketch

TEST(QuantileSketch, SmallMagnitudesAreExact) {
  QuantileSketch sk;
  for (std::int64_t v = 0; v < 60; ++v) sk.observe(v);
  // |v| < 64 is one bucket per integer: quantiles are exact.
  EXPECT_EQ(sk.quantile(0.5), 29);
  EXPECT_EQ(sk.quantile(1.0), 59);
  EXPECT_EQ(sk.min(), 0);
  EXPECT_EQ(sk.max(), 59);
  EXPECT_EQ(sk.count(), 60);
  EXPECT_EQ(sk.sum(), 59 * 60 / 2);
}

TEST(QuantileSketch, NegativeValuesOrderBeforePositive) {
  QuantileSketch sk;
  sk.observe(-50);
  sk.observe(-5);
  sk.observe(3);
  sk.observe(40);
  EXPECT_EQ(sk.quantile(0.25), -50);
  EXPECT_EQ(sk.quantile(0.5), -5);
  EXPECT_EQ(sk.quantile(0.75), 3);
  EXPECT_EQ(sk.quantile(1.0), 40);
}

TEST(QuantileSketch, EmptySketchReportsZeros) {
  const QuantileSketch sk;
  EXPECT_EQ(sk.quantile(0.99), 0);
  EXPECT_EQ(sk.to_string(),
            "count=0 sum=0 min=0 max=0 p50=0 p90=0 p99=0 p999=0");
}

TEST(QuantileSketch, MergeMatchesSerialInAnyOrder) {
  QuantileSketch serial, a, b;
  for (std::int64_t i = 0; i < 2000; ++i) {
    const std::int64_t v = (i * 7919) % 100'000 - 20'000;
    serial.observe(v);
    (i % 2 == 0 ? a : b).observe(v);
  }
  QuantileSketch ab = a;
  ab.merge(b);
  QuantileSketch ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.to_string(), serial.to_string());
  EXPECT_EQ(ba.to_string(), serial.to_string());
}

// splitmix64 — deterministic pseudo-random stream for the accuracy
// cross-check (no std::random: identical values on every platform).
std::uint64_t splitmix(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

TEST(QuantileSketch, QuantilesLandWithinOneBucketOfExact) {
  // The acceptance cross-check: sketch quantiles vs the exact sorted
  // percentile over the full sample, across five orders of magnitude and
  // both signs. "Within one log bucket" is the sketch's contract
  // (inclusive upper edge of the rank's bucket).
  QuantileSketch sk;
  std::vector<std::int64_t> exact;
  std::uint64_t state = 99;
  for (int i = 0; i < 50'000; ++i) {
    const std::int64_t v =
        static_cast<std::int64_t>(splitmix(state) % 2'000'000) - 400'000;
    sk.observe(v);
    exact.push_back(v);
  }
  std::sort(exact.begin(), exact.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const std::size_t rank = static_cast<std::size_t>(
        q * static_cast<double>(exact.size() - 1));
    const std::int64_t truth = exact[rank];
    const std::int64_t est = sk.quantile(q);
    EXPECT_LE(std::abs(QuantileSketch::bucket_of(est) -
                       QuantileSketch::bucket_of(truth)),
              1)
        << "q=" << q << " exact=" << truth << " sketch=" << est;
    // The bucket bound implies a ~3.1% relative error bound; check it
    // directly too (plus a bucket of absolute slack near zero).
    EXPECT_LE(std::abs(est - truth),
              std::abs(truth) / 16 + 64)
        << "q=" << q;
  }
}

// --------------------------------------------------------- TimeSeries

TEST(TimeSeries, WindowsAccumulateByTapTimestamp) {
  TimeSeries ts(Duration::millis(1), 64, nullptr, nullptr);
  ts.on_wire_packet(Time::from_ns(100'000), 1200);     // window 0
  ts.on_wire_packet(Time::from_ns(900'000), 1200);     // window 0
  ts.on_wire_packet(Time::from_ns(1'500'000), 600);    // window 1
  ts.finalize();
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.window(0).wire_packets, 2);
  EXPECT_EQ(ts.window(0).wire_bytes, 2400);
  EXPECT_EQ(ts.window(1).wire_packets, 1);
  EXPECT_EQ(ts.window(1).wire_bytes, 600);
  EXPECT_EQ(ts.evicted_windows(), 0);
}

TEST(TimeSeries, RingEvictsOldestAndCountsIt) {
  TimeSeries ts(Duration::millis(1), 4, nullptr, nullptr);
  for (std::int64_t w = 0; w < 10; ++w) {
    ts.on_wire_packet(Time::from_ns(w * 1'000'000 + 1), 100);
  }
  ts.finalize();
  EXPECT_EQ(ts.size(), 4u);
  EXPECT_EQ(ts.begin_ordinal(), 6);
  EXPECT_EQ(ts.end_ordinal(), 10);
  EXPECT_EQ(ts.evicted_windows(), 6);
  for (std::int64_t w = 6; w < 10; ++w) {
    EXPECT_EQ(ts.window(w).wire_packets, 1) << w;
  }
}

TEST(TimeSeries, IdleGapBeyondCapacityEvictsWholesale) {
  // A packet, a long silence, a packet: the gap must not materialize
  // (or iterate) millions of idle windows — everything before the new
  // tail is evicted arithmetically.
  TimeSeries ts(Duration::micros(1), 8, nullptr, nullptr);
  ts.on_wire_packet(Time::from_ns(1), 100);
  ts.on_wire_packet(Time::from_ns(5'000'000'000), 100);  // 5s later
  ts.finalize();
  EXPECT_EQ(ts.size(), 8u);
  EXPECT_EQ(ts.end_ordinal(), 5'000'001);
  EXPECT_EQ(ts.evicted_windows(), 5'000'001 - 8);
  EXPECT_EQ(ts.window(ts.end_ordinal() - 1).wire_packets, 1);
  EXPECT_EQ(ts.window(ts.end_ordinal() - 2).wire_packets, 0);
}

struct FakeCounters {
  std::int64_t delivered = 0;
  std::int64_t dropped = 0;
  std::int64_t backlog = 0;
  static TimeSeries::Snapshot read(void* ctx) {
    auto* c = static_cast<FakeCounters*>(ctx);
    return {c->delivered, c->dropped, c->backlog};
  }
};

TEST(TimeSeries, CounterDeltasAttributeToTheClosingWindow) {
  FakeCounters fake;
  TimeSeries ts(Duration::millis(1), 16, &FakeCounters::read, &fake);
  ts.on_wire_packet(Time::from_ns(100), 100);  // opens window 0
  fake.delivered = 10;
  fake.dropped = 2;
  fake.backlog = 3;
  ts.on_wire_packet(Time::from_ns(1'000'100), 100);  // rolls to window 1
  fake.delivered = 25;  // +15 during window 1 (and the drain)
  fake.backlog = 0;
  ts.finalize();
  EXPECT_EQ(ts.window(0).delivered_packets, 10);
  EXPECT_EQ(ts.window(0).dropped_packets, 2);
  EXPECT_EQ(ts.window(0).backlog_packets, 3);
  EXPECT_EQ(ts.window(1).delivered_packets, 15);
  EXPECT_EQ(ts.window(1).dropped_packets, 0);
  EXPECT_EQ(ts.window(1).backlog_packets, 0);
  // finalize() is idempotent: a second call must not re-snapshot.
  fake.delivered = 99;
  ts.finalize();
  EXPECT_EQ(ts.window(1).delivered_packets, 15);
}

obs::SpanEvent wire_span(std::int64_t at_ns, std::int64_t intended_ns) {
  obs::SpanEvent ev;
  ev.at = Time::from_ns(at_ns);
  ev.intended = Time::from_ns(intended_ns);
  ev.stage = obs::TraceStage::kWire;
  return ev;
}

TEST(TimeSeries, FoldSpansAddsStageErrorsToSpanWindows) {
  TimeSeries ts(Duration::millis(1), 16, nullptr, nullptr);
  ts.on_wire_packet(Time::from_ns(500'000), 100);
  ts.finalize();
  const auto wire = static_cast<std::size_t>(obs::TraceStage::kWire);
  std::vector<obs::SpanEvent> spans;
  spans.push_back(wire_span(500'000, 480'000));    // +20 us, window 0
  spans.push_back(wire_span(600'000, 650'000));    // -50 us, window 0
  spans.push_back(wire_span(1'200'000, 1'100'000));  // +100 us, window 1
  spans.push_back(wire_span(700'000, 0));  // no pacer intent: skipped
  ts.fold_spans(spans);
  ASSERT_EQ(ts.size(), 2u);  // window 1 is a span-only extension
  EXPECT_EQ(ts.window(0).stage_count[wire], 2);
  EXPECT_EQ(ts.window(0).stage_error_sum_us[wire], 20 - 50);
  EXPECT_EQ(ts.window(1).stage_count[wire], 1);
  EXPECT_EQ(ts.window(1).stage_error_sum_us[wire], 100);
}

TEST(TimeSeries, CsvIsByteDeterministic) {
  TimeSeries ts(Duration::millis(1), 8, nullptr, nullptr);
  ts.on_wire_packet(Time::from_ns(100), 500);
  ts.on_wire_packet(Time::from_ns(1'000'100), 700);
  ts.finalize();
  const std::string csv = ts.to_csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "window,start_us,wire_packets,wire_bytes,delivered_packets,"
            "dropped_packets,backlog_packets,n_transport:pacer_release,"
            "err_us_transport:pacer_release,n_kernel:socket_write,"
            "err_us_kernel:socket_write,n_kernel:qdisc_enqueue,"
            "err_us_kernel:qdisc_enqueue,n_kernel:qdisc_dequeue,"
            "err_us_kernel:qdisc_dequeue,n_kernel:qdisc_drop,"
            "err_us_kernel:qdisc_drop,n_kernel:gso_segment,"
            "err_us_kernel:gso_segment,n_kernel:nic_tx,"
            "err_us_kernel:nic_tx,n_wire:packet_departure,"
            "err_us_wire:packet_departure,n_transport:datagram_received,"
            "err_us_transport:datagram_received");
  EXPECT_NE(csv.find("\n0,0,1,500,"), std::string::npos);
  EXPECT_NE(csv.find("\n1,1000,1,700,"), std::string::npos);
}

// ------------------------------------------------------- HealthReport

HealthContext healthy_context() {
  HealthContext ctx;
  ctx.rtt = Duration::millis(20);
  ctx.flows = 2;
  ctx.completed_flows = 2;
  ctx.fairness = 1.0;
  return ctx;
}

TEST(HealthReport, StallIsAnInteriorIdleGapLongerThanKRtt) {
  // 1 ms windows, 20 ms RTT, k=4 -> gaps > 80 ms (80 windows) stall.
  TimeSeries ts(Duration::millis(1), 4096, nullptr, nullptr);
  ts.on_wire_packet(Time::from_ns(500'000), 100);  // window 0
  // windows 1..99 idle: 99 ms interior gap > 80 ms.
  ts.on_wire_packet(Time::from_ns(100'500'000), 100);  // window 100
  ts.finalize();
  const HealthReport report = obs::build_health_report(
      healthy_context(), &ts, nullptr, nullptr, net::CountersTable());
  ASSERT_EQ(report.stalls.size(), 1u);
  EXPECT_EQ(report.stalls[0].begin_window, 1);
  EXPECT_EQ(report.stalls[0].end_window, 99);
  EXPECT_EQ(report.stalls[0].duration_us, 99'000);
  EXPECT_FALSE(report.healthy());
}

TEST(HealthReport, LeadingAndTrailingIdleAreNotStalls) {
  TimeSeries ts(Duration::millis(1), 4096, nullptr, nullptr);
  // Active only in windows 200..201: the 200-window lead-in must not be
  // reported (flows with start delays are not stalled, just not started).
  ts.on_wire_packet(Time::from_ns(200'500'000), 100);
  ts.on_wire_packet(Time::from_ns(201'500'000), 100);
  ts.finalize();
  const HealthReport report = obs::build_health_report(
      healthy_context(), &ts, nullptr, nullptr, net::CountersTable());
  EXPECT_TRUE(report.stalls.empty());
  EXPECT_TRUE(report.healthy());
}

TEST(HealthReport, DropBurstNeedsBothMinimumAndFraction) {
  FakeCounters fake;
  TimeSeries ts(Duration::millis(1), 64, &FakeCounters::read, &fake);
  ts.on_wire_packet(Time::from_ns(100), 100);
  fake.delivered = 100;
  fake.dropped = 3;  // 3 drops: under min_drops=8 -> not a burst
  ts.on_wire_packet(Time::from_ns(1'000'100), 100);
  fake.delivered = 200;
  fake.dropped = 23;  // +20 drops vs +100 delivered: 16.7% -> burst
  ts.on_wire_packet(Time::from_ns(2'000'100), 100);
  fake.delivered = 2000;
  fake.dropped = 33;  // +10 drops vs +1800 delivered: 0.55% -> no burst
  ts.finalize();
  const HealthReport report = obs::build_health_report(
      healthy_context(), &ts, nullptr, nullptr, net::CountersTable());
  ASSERT_EQ(report.drop_bursts.size(), 1u);
  EXPECT_EQ(report.drop_bursts[0].window, 1);
  EXPECT_EQ(report.drop_bursts[0].dropped, 20);
  EXPECT_EQ(report.drop_bursts[0].delivered, 100);
}

TEST(HealthReport, PacingSpikeOnWireStageMean) {
  TimeSeries ts(Duration::millis(1), 64, nullptr, nullptr);
  ts.on_wire_packet(Time::from_ns(100), 100);
  ts.on_wire_packet(Time::from_ns(1'000'100), 100);
  ts.finalize();
  std::vector<obs::SpanEvent> spans;
  spans.push_back(wire_span(200'000, 190'000));  // +10 us: fine
  // window 1: mean error 60 ms > 50 ms threshold.
  spans.push_back(wire_span(1'100'000, 1'100'000 - 60'000'000));
  ts.fold_spans(spans);
  const HealthReport report = obs::build_health_report(
      healthy_context(), &ts, nullptr, nullptr, net::CountersTable());
  ASSERT_EQ(report.pacing_spikes.size(), 1u);
  EXPECT_EQ(report.pacing_spikes[0].window, 1);
  EXPECT_EQ(report.pacing_spikes[0].mean_error_us, 60'000);
  EXPECT_EQ(report.pacing_spikes[0].samples, 1);
}

TEST(HealthReport, IncompleteFlowsAreUnhealthy) {
  HealthContext ctx = healthy_context();
  ctx.completed_flows = 1;
  const HealthReport report = obs::build_health_report(
      ctx, nullptr, nullptr, nullptr, net::CountersTable());
  EXPECT_FALSE(report.healthy());
}

TEST(HealthReport, JsonIsFixedShapeAndDeterministic) {
  QuantileSketch pacing;
  pacing.observe(10);
  pacing.observe(20);
  const HealthReport report = obs::build_health_report(
      healthy_context(), nullptr, &pacing, nullptr, net::CountersTable());
  const std::string json = report.to_json();
  EXPECT_EQ(json, report.to_json());  // pure function of the inputs
  EXPECT_NE(json.find("\"schema\": \"quicsteps-health-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"flows\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"fairness\": 1.000000"), std::string::npos);
  EXPECT_NE(
      json.find(
          "\"pacing_error_us\": {\"count\": 2, \"p50\": 10, \"p90\": 20, "
          "\"p99\": 20, \"p999\": 20}"),
      std::string::npos);
  EXPECT_NE(json.find("\"healthy\": true"), std::string::npos);
}

}  // namespace
}  // namespace quicsteps
