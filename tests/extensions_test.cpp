// Tests for the extension features: connection flow control, sendmmsg
// batching, competing flows, and CSV artifact export.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "framework/artifacts.hpp"
#include "framework/duel.hpp"
#include "framework/runner.hpp"
#include "quic/connection.hpp"
#include "stacks/event_loop_model.hpp"

namespace quicsteps {
namespace {

using namespace quicsteps::sim::literals;

// ------------------------------------------------------------ flow control

quic::Connection::Config fc_config(std::int64_t credit) {
  quic::Connection::Config cfg;
  cfg.total_payload_bytes = 100 * quic::kPayloadPerDatagram;
  cfg.flow_control_credit = credit;
  return cfg;
}

TEST(FlowControl, BlocksNewDataAtCredit) {
  quic::Connection conn(fc_config(3 * quic::kPayloadPerDatagram));
  conn.build_packet(sim::Time::zero(), sim::Time::zero());
  conn.build_packet(sim::Time::zero(), sim::Time::zero());
  conn.build_packet(sim::Time::zero(), sim::Time::zero());
  EXPECT_FALSE(conn.has_data_to_send());
  EXPECT_TRUE(conn.flow_control_blocked());
  EXPECT_FALSE(conn.congestion_blocked());  // cwnd has room; fc is the cap
}

TEST(FlowControl, MaxDataGrantUnblocks) {
  quic::Connection conn(fc_config(3 * quic::kPayloadPerDatagram));
  for (int i = 0; i < 3; ++i) {
    conn.build_packet(sim::Time::zero(), sim::Time::zero());
  }
  ASSERT_TRUE(conn.flow_control_blocked());
  net::Packet ack;
  ack.kind = net::PacketKind::kQuicAck;
  auto payload = std::make_shared<net::TransportAck>();
  payload->blocks = {net::AckBlock{1, 3}};
  payload->max_data = 6 * quic::kPayloadPerDatagram;
  ack.ack = payload;
  conn.on_ack_packet(ack, sim::Time::zero() + 40_ms);
  EXPECT_FALSE(conn.flow_control_blocked());
  EXPECT_TRUE(conn.has_data_to_send());
}

TEST(FlowControl, RetransmissionsExempt) {
  quic::Connection conn(fc_config(10 * quic::kPayloadPerDatagram));
  for (int i = 0; i < 10; ++i) {
    conn.build_packet(sim::Time::zero(), sim::Time::zero());
  }
  ASSERT_TRUE(conn.flow_control_blocked());
  // ACK 4..10 declares 1..3 lost: the retransmissions must flow despite
  // the exhausted credit.
  net::Packet ack;
  ack.kind = net::PacketKind::kQuicAck;
  auto payload = std::make_shared<net::TransportAck>();
  payload->blocks = {net::AckBlock{4, 10}};
  ack.ack = payload;
  conn.on_ack_packet(ack, sim::Time::zero() + 40_ms);
  EXPECT_GT(conn.stats().packets_declared_lost, 0);
  EXPECT_TRUE(conn.has_data_to_send());
  EXPECT_FALSE(conn.flow_control_blocked());
}

TEST(FlowControl, ZeroCreditMeansUnlimited) {
  quic::Connection conn(fc_config(0));
  for (int i = 0; i < 10; ++i) {
    conn.build_packet(sim::Time::zero(), sim::Time::zero());
  }
  EXPECT_FALSE(conn.flow_control_blocked());
}

TEST(FlowControl, ThroughputIsCreditOverRtt) {
  // The ngtcp2 Table 1 mechanism, end to end: a static 81 kB credit on a
  // 40 ms path pins goodput at ~16 Mbit/s regardless of the link rate.
  framework::ExperimentConfig config;
  config.stack = framework::StackKind::kNgtcp2;
  config.payload_bytes = 4ll * 1024 * 1024;
  auto run = framework::Runner::run_once(config, 3);
  EXPECT_TRUE(run.completed);
  EXPECT_NEAR(run.goodput.goodput.mbps(), 81000.0 * 8.0 / 0.040 / 1e6, 1.0);
}

// ------------------------------------------------------------- sendmmsg

TEST(Sendmmsg, BatchesSyscallsWithoutGsoBuffers) {
  framework::ExperimentConfig plain;
  plain.stack = framework::StackKind::kQuicheSf;
  plain.topology.server_qdisc = framework::QdiscKind::kFq;
  plain.payload_bytes = 2ll * 1024 * 1024;
  auto base = framework::Runner::run_once(plain, 5);

  auto batched = plain;
  batched.use_sendmmsg = true;
  auto mmsg = framework::Runner::run_once(batched, 5);

  EXPECT_TRUE(mmsg.completed);
  // Far fewer syscalls...
  EXPECT_LT(mmsg.send_syscalls, base.send_syscalls / 2);
  // ...while FQ pacing quality is preserved (unlike stock GSO).
  EXPECT_GT(mmsg.trains.fraction_in_trains_up_to(5), 0.8);
}

// -------------------------------------------------------------- AppSource

TEST(AppSource, BulkReleasesEverythingImmediately) {
  sim::EventLoop loop;
  quic::Connection conn(fc_config(0));
  int pokes = 0;
  quic::AppSource source(loop, conn, {}, [&] { ++pokes; });
  source.start();
  EXPECT_EQ(conn.available_bytes(), conn.config().total_payload_bytes);
  EXPECT_EQ(pokes, 1);
}

TEST(AppSource, ChunkedReleasesOnSchedule) {
  sim::EventLoop loop;
  quic::Connection::Config cfg;
  cfg.total_payload_bytes = 10 * quic::kPayloadPerDatagram;
  cfg.app_limited_source = true;
  quic::Connection conn(cfg);
  EXPECT_EQ(conn.available_bytes(), 0);
  EXPECT_TRUE(conn.source_blocked());
  EXPECT_FALSE(conn.has_data_to_send());

  quic::SourceConfig src;
  src.kind = quic::SourceKind::kChunked;
  src.chunk_bytes = 3 * quic::kPayloadPerDatagram;
  src.period = 100_ms;
  int pokes = 0;
  quic::AppSource source(loop, conn, src, [&] { ++pokes; });
  source.start();
  // First chunk at t=0.
  EXPECT_EQ(conn.available_bytes(), 3 * quic::kPayloadPerDatagram);
  EXPECT_TRUE(conn.has_data_to_send());
  loop.run_until(sim::Time::zero() + 250_ms);
  EXPECT_EQ(conn.available_bytes(), 9 * quic::kPayloadPerDatagram);
  loop.run_until(sim::Time::zero() + 1_s);
  // Capped at the total payload; releases stop.
  EXPECT_EQ(conn.available_bytes(), 10 * quic::kPayloadPerDatagram);
  EXPECT_EQ(pokes, 4);
}

TEST(AppSource, CbrAccruesAtRate) {
  sim::EventLoop loop;
  quic::Connection::Config cfg;
  cfg.total_payload_bytes = 10ll * 1024 * 1024;
  cfg.app_limited_source = true;
  quic::Connection conn(cfg);
  quic::SourceConfig src;
  src.kind = quic::SourceKind::kCbr;
  src.rate = net::DataRate::megabits_per_second(8);
  src.frame_interval = 10_ms;
  quic::AppSource source(loop, conn, src, {});
  source.start();
  loop.run_until(sim::Time::zero() + 1_s);
  // 8 Mbit/s for ~1 s = ~1 MB (101 frames of 10 ms released by t=1s).
  EXPECT_NEAR(static_cast<double>(conn.available_bytes()), 1e6, 2e4);
}

TEST(AppSource, CbrTransferCompletesEndToEnd) {
  framework::ExperimentConfig config;
  config.stack = framework::StackKind::kPicoquic;
  config.cca = cc::CcAlgorithm::kBbr;
  config.workload.kind = quic::SourceKind::kCbr;
  config.workload.rate = net::DataRate::megabits_per_second(4);
  config.workload.frame_interval = 33_ms;
  config.payload_bytes = 2ll * 1024 * 1024;
  auto run = framework::Runner::run_once(config, 41);
  EXPECT_TRUE(run.completed);
  // Goodput tracks the media rate, not the link rate.
  EXPECT_NEAR(run.goodput.goodput.mbps(), 4.0, 0.5);
  // BBR's rate-based pacing keeps the frames spread.
  EXPECT_GT(run.trains.fraction_in_trains_up_to(5), 0.9);
}

// ------------------------------------------------------------------ duel

TEST(Duel, SameStackSplitsFairly) {
  framework::DuelConfig duel;
  duel.a.stack = framework::StackKind::kQuicheSf;
  duel.a.payload_bytes = 3ll * 1024 * 1024;
  duel.b = duel.a;
  duel.seed = 11;
  auto result = framework::run_duel(duel);
  EXPECT_TRUE(result.a.completed);
  EXPECT_TRUE(result.b.completed);
  EXPECT_GT(result.fairness, 0.95);
  // Both flows fit through the shared bottleneck: aggregate is bounded.
  EXPECT_LE(result.a.goodput.goodput.mbps() +
                result.b.goodput.goodput.mbps(),
            40.0);
}

TEST(Duel, StaggeredStartStillCompletes) {
  framework::DuelConfig duel;
  duel.a.stack = framework::StackKind::kQuicheSf;
  duel.a.payload_bytes = 2ll * 1024 * 1024;
  duel.b = duel.a;
  duel.b.stack = framework::StackKind::kPicoquic;
  duel.b_start_delay = 500_ms;
  duel.seed = 13;
  auto result = framework::run_duel(duel);
  EXPECT_TRUE(result.a.completed);
  EXPECT_TRUE(result.b.completed);
}

TEST(Duel, TcpParticipates) {
  framework::DuelConfig duel;
  duel.a.stack = framework::StackKind::kPicoquic;
  duel.a.payload_bytes = 2ll * 1024 * 1024;
  duel.b = duel.a;
  duel.b.stack = framework::StackKind::kTcpTls;
  duel.seed = 17;
  auto result = framework::run_duel(duel);
  EXPECT_TRUE(result.a.completed);
  EXPECT_TRUE(result.b.completed);
  EXPECT_GT(result.bottleneck_drops, 0);
}

// ------------------------------------------------------------- artifacts

TEST(Artifacts, CaptureCsvHasHeaderAndRows) {
  framework::ExperimentConfig config;
  config.stack = framework::StackKind::kQuicheSf;
  config.payload_bytes = 1ll * 1024 * 1024;
  config.record_cwnd_trace = true;
  auto run = framework::Runner::run_once(config, 9);

  std::ostringstream gaps;
  framework::write_gaps_csv(gaps, run);
  const std::string gaps_str = gaps.str();
  EXPECT_EQ(gaps_str.rfind("gap_ms\n", 0), 0u);
  // header + one line per gap
  const auto lines = std::count(gaps_str.begin(), gaps_str.end(), '\n');
  EXPECT_EQ(lines, static_cast<long>(run.gaps.gaps_ms.size()) + 1);

  std::ostringstream trace;
  framework::write_cwnd_trace_csv(trace, run);
  const std::string trace_str = trace.str();
  EXPECT_NE(trace_str.find("cwnd_bytes"), std::string::npos);
  EXPECT_GT(std::count(trace_str.begin(), trace_str.end(), '\n'), 100);

  std::ostringstream summary;
  framework::write_summary_csv(summary, "probe", run, true);
  EXPECT_NE(summary.str().find("goodput_mbps"), std::string::npos);
  EXPECT_NE(summary.str().find("probe,1,"), std::string::npos);
}

TEST(Artifacts, CaptureCsvRoundTripCounts) {
  sim::EventLoop loop;
  net::Packet pkt;
  pkt.id = 1;
  pkt.flow = 1;
  pkt.size_bytes = 1500;
  pkt.wire_time = sim::Time::zero() + 5_ms;
  std::ostringstream out;
  framework::write_capture_csv(out, {pkt});
  const std::string str = out.str();
  EXPECT_EQ(std::count(str.begin(), str.end(), '\n'), 2);  // header + row
  EXPECT_NE(str.find("5000000"), std::string::npos);       // 5 ms in ns
}

}  // namespace
}  // namespace quicsteps
