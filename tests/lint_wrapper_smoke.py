#!/usr/bin/env python3
"""Smoke test for tools/quicsteps_lint.py (the legacy lint wrapper).

The wrapper's contract: it execs quicsteps-analyze, forwards --cache-dir,
--fix-baseline, and --rules verbatim, and returns the analyzer's exact
exit code (0 clean / 1 findings / 2 configuration error). Run as

    lint_wrapper_smoke.py <repo-root> <quicsteps-analyze binary>

(registered in tests/CMakeLists.txt as the `lint_wrapper` ctest).
"""

import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path


def run_wrapper(wrapper, root, *extra):
    return subprocess.run(
        [sys.executable, str(wrapper), "--root", str(root), *extra],
        capture_output=True, text=True)


def check(cond, label, result):
    if not cond:
        print(f"FAIL: {label}\n  exit={result.returncode}\n"
              f"  stdout={result.stdout!r}\n  stderr={result.stderr!r}")
        sys.exit(1)
    print(f"ok: {label}")


def main():
    root = Path(sys.argv[1]).resolve()
    os.environ["QUICSTEPS_ANALYZE"] = sys.argv[2]
    wrapper = root / "tools" / "quicsteps_lint.py"
    violations = root / "tools" / "analyze" / "testdata" / "violations"

    # Clean tree, default scan: exit 0 forwarded.
    r = run_wrapper(wrapper, root)
    check(r.returncode == 0, "default scan is clean (exit 0)", r)

    # Findings: exit 1 forwarded, text report on stdout.
    r = run_wrapper(wrapper, root, str(violations))
    check(r.returncode == 1, "violations fixture exits 1", r)
    check("determinism/libc-rand" in r.stdout, "findings reach stdout", r)

    # --rules is forwarded: a family with no findings in the fixture
    # narrows the run back to clean.
    r = run_wrapper(wrapper, root, "--rules", "scheduling",
                    str(violations / "units_raw.cpp"))
    check(r.returncode == 0, "--rules narrows to a clean family", r)
    r = run_wrapper(wrapper, root, "--rules", "units",
                    str(violations / "units_raw.cpp"))
    check(r.returncode == 1, "--rules units still finds the seeded raws", r)

    # --cache-dir is forwarded: the second run replays from cache and the
    # summary line says so.
    cache = Path(tempfile.mkdtemp(prefix="qs-lint-smoke-cache"))
    try:
        # (the summary line travels on stderr, next to the findings)
        r = run_wrapper(wrapper, root, "--cache-dir", str(cache),
                        str(violations))
        check("(0 cached)" in r.stderr, "cold run reports 0 cached", r)
        r = run_wrapper(wrapper, root, "--cache-dir", str(cache),
                        str(violations))
        check("(8 cached)" in r.stderr and r.returncode == 1,
              "warm run replays all 8 fixture files", r)
    finally:
        shutil.rmtree(cache, ignore_errors=True)

    # --fix-baseline is forwarded (a no-op here: the checked-in baseline
    # holds no stale entries, so the tree must stay untouched and clean).
    baseline = root / "tools" / "analyze" / "baseline.txt"
    before = baseline.read_bytes()
    r = run_wrapper(wrapper, root, "--fix-baseline")
    check(r.returncode == 0, "--fix-baseline accepted and clean", r)
    check(baseline.read_bytes() == before,
          "no stale entries -> baseline untouched", r)

    # Configuration errors forward exit 2.
    r = run_wrapper(wrapper, root, "no/such/path.cpp")
    check(r.returncode == 2, "bad path forwards exit 2", r)

    print("lint_wrapper_smoke: all checks passed")


if __name__ == "__main__":
    main()
