// Fabric tests: the N-flow datapath (flows.hpp / network.hpp) against its
// three contracts — N=1 runs are bit-identical to Runner::run_once, the
// run deadline covers every flow (the old duel truncated flow B), and N
// identical flows split the shared bottleneck fairly (Jain's index ~ 1).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/quicsteps.hpp"

namespace quicsteps {
namespace {

using framework::ExperimentConfig;
using framework::FlowSpec;
using framework::MultiFlowConfig;
using framework::MultiFlowResult;
using framework::ParallelRunner;
using framework::RunResult;
using framework::Runner;
using framework::StackKind;
using sim::Duration;

ExperimentConfig small_config(StackKind stack, std::int64_t payload_bytes) {
  ExperimentConfig config;
  config.stack = stack;
  config.payload_bytes = payload_bytes;
  return config;
}

// ------------------------------------------------- N=1 fabric identity

TEST(RunFlows, SingleFlowMatchesRunOnceBitExact) {
  for (StackKind stack :
       {StackKind::kQuiche, StackKind::kQuicheSf, StackKind::kPicoquic,
        StackKind::kNgtcp2, StackKind::kTcpTls, StackKind::kIdealQuic}) {
    const ExperimentConfig config = small_config(stack, 512 * 1024);
    const RunResult once = Runner::run_once(config, 3);

    MultiFlowConfig flows;
    flows.seed = 3;
    flows.flows.push_back(FlowSpec{.config = config});
    const MultiFlowResult multi = framework::run_flows(flows);

    ASSERT_EQ(multi.flows.size(), 1u);
    const RunResult& flow = multi.flows[0];
    EXPECT_EQ(flow.wire_hash, once.wire_hash) << to_string(stack);
    EXPECT_EQ(flow.completed, once.completed) << to_string(stack);
    EXPECT_EQ(flow.packets_sent, once.packets_sent) << to_string(stack);
    EXPECT_EQ(flow.wire_data_packets, once.wire_data_packets);
    EXPECT_EQ(flow.dropped_packets, once.dropped_packets);
    EXPECT_EQ(flow.gaps.gaps_ms.size(), once.gaps.gaps_ms.size());
    EXPECT_DOUBLE_EQ(flow.goodput.goodput.mbps(),
                     once.goodput.goodput.mbps());
    // One flow alone owns every bottleneck drop and all the fairness.
    EXPECT_EQ(multi.bottleneck_drops, once.dropped_packets);
  }
}

TEST(RunFlows, SingleFlowKeepsHistoricalFlowIds) {
  // QUIC=1, TCP=2 — Runner::run_once's convention, which the capture
  // demux must follow for N=1 reports to match.
  MultiFlowConfig quic;
  quic.flows.push_back(
      FlowSpec{.config = small_config(StackKind::kIdealQuic, 64 * 1024)});
  quic.flows[0].config.keep_capture = true;
  const MultiFlowResult quic_result = framework::run_flows(quic);
  ASSERT_NE(quic_result.flows[0].capture, nullptr);
  ASSERT_FALSE(quic_result.flows[0].capture->empty());
  EXPECT_EQ(quic_result.flows[0].capture->front().flow, 1u);

  MultiFlowConfig tcp;
  tcp.flows.push_back(
      FlowSpec{.config = small_config(StackKind::kTcpTls, 64 * 1024)});
  tcp.flows[0].config.keep_capture = true;
  const MultiFlowResult tcp_result = framework::run_flows(tcp);
  ASSERT_NE(tcp_result.flows[0].capture, nullptr);
  ASSERT_FALSE(tcp_result.flows[0].capture->empty());
  EXPECT_EQ(tcp_result.flows[0].capture->front().flow, 2u);
}

// ------------------------------------------------------ deadline policy

TEST(RunFlows, DeadlineCoversEveryFlow) {
  // Regression for the duel deadline bug: the loop used to stop at flow
  // A's budget plus B's start delay, truncating a larger flow B.
  const ExperimentConfig a = small_config(StackKind::kQuicheSf, 1 << 20);
  const ExperimentConfig b = small_config(StackKind::kPicoquic, 64 << 20);

  MultiFlowConfig flows;
  flows.flows.push_back(FlowSpec{.config = a});
  flows.flows.push_back(
      FlowSpec{.config = b, .start_delay = Duration::millis(500)});
  const Duration deadline = framework::flows_deadline(flows);

  // Every flow's full budget fits, offset by its start delay.
  EXPECT_GE(deadline, Duration::millis(500) + framework::run_deadline(b));
  // The old formula starved B: A's budget + B's delay is far too short.
  EXPECT_GT(deadline, framework::run_deadline(a) + Duration::millis(500));

  // App-limited workloads extend the budget by their release time.
  MultiFlowConfig chunked = flows;
  chunked.flows[1].config.workload.kind = quic::SourceKind::kChunked;
  EXPECT_GT(framework::flows_deadline(chunked), deadline);
}

// -------------------------------------------------- N-flow fairness

TEST(RunFlows, FourIdenticalFlowsSplitFairly) {
  MultiFlowConfig flows;
  flows.seed = 11;
  for (int i = 0; i < 4; ++i) {
    flows.flows.push_back(FlowSpec{
        .config = small_config(StackKind::kQuicheSf, 3ll * 256 * 1024)});
  }
  const MultiFlowResult result = framework::run_flows(flows);

  ASSERT_EQ(result.flows.size(), 4u);
  double total_mbps = 0.0;
  std::int64_t attributed_drops = 0;
  for (const RunResult& flow : result.flows) {
    EXPECT_TRUE(flow.completed);
    EXPECT_GT(flow.goodput.goodput.mbps(), 0.0);
    total_mbps += flow.goodput.goodput.mbps();
    attributed_drops += flow.dropped_packets;
  }
  // Four identical stacks sharing 40 Mbit/s: near-perfect Jain's index,
  // aggregate inside the bottleneck, and every drop attributed to some
  // flow.
  EXPECT_GT(result.fairness, 0.9);
  EXPECT_LE(total_mbps, 40.0);
  EXPECT_EQ(attributed_drops, result.bottleneck_drops);
}

TEST(RunFlows, HundredIdenticalFlowsShareNearPerfectly) {
  // The fabric-scale fairness golden: 100 homogeneous flows on one
  // bottleneck must land within a percent of perfect Jain's index, with
  // every bottleneck drop attributed to exactly one flow. The bottleneck
  // is capacity-scaled with N (as the flow-scale benches do) — at the
  // single-flow default the fabric is in 100x overload and congestion
  // collapse, not fairness, is what gets measured. Lite metrics: at this
  // N the raw per-flow sample vectors are dead weight.
  MultiFlowConfig flows;
  flows.seed = 21;
  flows.lite_metrics = true;
  for (int i = 0; i < 100; ++i) {
    ExperimentConfig config = small_config(StackKind::kIdealQuic, 16 * 1024);
    config.topology.bottleneck_rate = net::DataRate::megabits_per_second(400);
    config.topology.bottleneck_buffer_bytes = 2 * 1000 * 1000;
    flows.flows.push_back(FlowSpec{.config = config});
  }
  const MultiFlowResult result = framework::run_flows(flows);

  ASSERT_EQ(result.flows.size(), 100u);
  std::int64_t attributed_drops = 0;
  for (const RunResult& flow : result.flows) {
    EXPECT_GT(flow.goodput.goodput.mbps(), 0.0);
    attributed_drops += flow.dropped_packets;
    // Lite mode keeps the aggregates but not the raw samples.
    EXPECT_TRUE(flow.gaps.gaps_ms.empty());
  }
  EXPECT_GE(result.fairness, 0.99);
  EXPECT_EQ(attributed_drops, result.bottleneck_drops);
}

TEST(RunFlows, LiteMetricsKeepAggregatesIdentical) {
  MultiFlowConfig retained;
  retained.seed = 4;
  for (int i = 0; i < 2; ++i) {
    retained.flows.push_back(
        FlowSpec{.config = small_config(StackKind::kIdealQuic, 128 * 1024)});
  }
  MultiFlowConfig lite = retained;
  lite.lite_metrics = true;

  const MultiFlowResult full = framework::run_flows(retained);
  const MultiFlowResult streamed = framework::run_flows(lite);
  ASSERT_EQ(full.flows.size(), streamed.flows.size());
  for (std::size_t i = 0; i < full.flows.size(); ++i) {
    const RunResult& a = full.flows[i];
    const RunResult& b = streamed.flows[i];
    // The simulation itself is untouched by the metrics mode.
    EXPECT_EQ(a.wire_hash, b.wire_hash);
    EXPECT_EQ(a.wire_data_packets, b.wire_data_packets);
    // Streaming aggregates match the retained ones (Welford vs two-pass:
    // equal to floating-point noise).
    EXPECT_EQ(b.gaps.gaps_ms.size(), 0u);
    ASSERT_EQ(a.gaps.summary_ms.count, b.gaps.summary_ms.count);
    EXPECT_NEAR(a.gaps.summary_ms.mean, b.gaps.summary_ms.mean, 1e-9);
    EXPECT_NEAR(a.gaps.summary_ms.stddev, b.gaps.summary_ms.stddev, 1e-9);
    EXPECT_DOUBLE_EQ(a.gaps.summary_ms.min, b.gaps.summary_ms.min);
    EXPECT_DOUBLE_EQ(a.gaps.summary_ms.max, b.gaps.summary_ms.max);
    EXPECT_DOUBLE_EQ(a.gaps.back_to_back_fraction,
                     b.gaps.back_to_back_fraction);
    EXPECT_NEAR(a.precision.precision_ms, b.precision.precision_ms, 1e-9);
    EXPECT_EQ(a.trains.total_packets, b.trains.total_packets);
    EXPECT_EQ(a.trains.packets_by_length, b.trains.packets_by_length);
  }
}

TEST(RunFlows, JainIndexHandMath) {
  EXPECT_DOUBLE_EQ(framework::jain_index({10.0, 10.0, 10.0, 10.0}), 1.0);
  // One flow hogging everything: 1/N.
  EXPECT_DOUBLE_EQ(framework::jain_index({40.0, 0.0, 0.0, 0.0}), 0.25);
  EXPECT_DOUBLE_EQ(framework::jain_index({0.0, 0.0}), 0.0);
  EXPECT_NEAR(framework::jain_index({30.0, 10.0}), 0.8, 1e-12);
}

// ------------------------------------------------ parallel fan-out

TEST(ParallelFlows, FlowSetsAreBitIdenticalToSerial) {
  std::vector<MultiFlowConfig> sets;
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    MultiFlowConfig config;
    config.seed = seed;
    config.flows.push_back(
        FlowSpec{.config = small_config(StackKind::kQuiche, 256 * 1024)});
    config.flows.push_back(
        FlowSpec{.config = small_config(StackKind::kPicoquic, 256 * 1024)});
    sets.push_back(config);
  }

  const auto serial = ParallelRunner(1).run_flow_sets(sets);
  const auto parallel = ParallelRunner(4).run_flow_sets(sets);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t s = 0; s < serial.size(); ++s) {
    ASSERT_EQ(serial[s].flows.size(), parallel[s].flows.size());
    EXPECT_DOUBLE_EQ(serial[s].fairness, parallel[s].fairness);
    for (std::size_t f = 0; f < serial[s].flows.size(); ++f) {
      EXPECT_EQ(serial[s].flows[f].wire_hash, parallel[s].flows[f].wire_hash);
    }
  }
}

TEST(ParallelFlows, ShardedExtractionIsBitIdenticalAtScale) {
  // The fabric-scale determinism gate: sharding only parallelizes the
  // per-flow extraction (demux finish, hash digest, result fill) after
  // the serial event core has run, so every shard plan must reproduce
  // the unsharded run bit for bit — at N=1000, not just at toy sizes.
  MultiFlowConfig config;
  config.seed = 9;
  config.lite_metrics = true;
  for (int i = 0; i < 1000; ++i) {
    config.flows.push_back(
        FlowSpec{.config = small_config(StackKind::kIdealQuic, 4096)});
  }

  const MultiFlowResult serial = framework::run_flows(config);
  const MultiFlowResult sharded =
      ParallelRunner(4).run_flow_shards(config, /*shard_size=*/64);

  ASSERT_EQ(serial.flows.size(), sharded.flows.size());
  EXPECT_DOUBLE_EQ(serial.fairness, sharded.fairness);
  EXPECT_EQ(serial.bottleneck_drops, sharded.bottleneck_drops);
  for (std::size_t f = 0; f < serial.flows.size(); ++f) {
    EXPECT_EQ(serial.flows[f].wire_hash, sharded.flows[f].wire_hash);
    EXPECT_EQ(serial.flows[f].dropped_packets,
              sharded.flows[f].dropped_packets);
    EXPECT_DOUBLE_EQ(serial.flows[f].goodput.goodput.mbps(),
                     sharded.flows[f].goodput.goodput.mbps());
  }
}

// --------------------------------------------- fleet telemetry gates

TEST(TelemetryFleet, ArtifactsAreBitIdenticalSerialVsSharded) {
  // The telemetry spine feeds from the serial event core (wire tap +
  // bottleneck counters) and merges per-flow sketch slots in flows[]
  // order, so every derived artifact — windowed CSV, registry emission
  // (fleet sketches included), health JSON — must be byte-identical
  // between run_flows and any shard plan. N=1000 with 1-in-100 sampled
  // tracing: the fabric-scale configuration, not a toy.
  MultiFlowConfig config;
  config.seed = 9;
  config.lite_metrics = true;
  config.trace_sample = 100;
  config.telemetry_window = Duration::millis(10);
  for (int i = 0; i < 1000; ++i) {
    FlowSpec spec{.config = small_config(StackKind::kIdealQuic, 4096)};
    spec.config.trace = true;
    config.flows.push_back(spec);
  }

  const MultiFlowResult serial = framework::run_flows(config);
  const MultiFlowResult sharded =
      ParallelRunner(4).run_flow_shards(config, /*shard_size=*/64);

  ASSERT_NE(serial.timeseries, nullptr);
  ASSERT_NE(sharded.timeseries, nullptr);
  EXPECT_GT(serial.timeseries->size(), 0u);
  EXPECT_EQ(serial.timeseries->to_csv(), sharded.timeseries->to_csv());
  EXPECT_EQ(serial.metrics.to_string(), sharded.metrics.to_string());
  EXPECT_EQ(framework::fleet_health(config, serial).to_json(),
            framework::fleet_health(config, sharded).to_json());

  if (obs::kTraceEnabled) {
    // The fleet sketches materialized and carry the sampled population.
    const auto& sketches = serial.metrics.sketches();
    const auto pacing = sketches.find("fleet/pacing_error_us/wire");
    ASSERT_NE(pacing, sketches.end());
    EXPECT_GT(pacing->second.count(), 0);
    const auto fct = sketches.find("fleet/fct_us");
    ASSERT_NE(fct, sketches.end());
    EXPECT_GT(fct->second.count(), 0);
  }
}

TEST(TelemetryFleet, SampledTracingLeavesTheWireUntouched) {
  // Sampling only filters what the observability spine records; the
  // simulated packet stream must be bit-identical whether a flow is
  // traced, sampled out, or the run is untraced entirely.
  MultiFlowConfig untraced;
  untraced.seed = 5;
  for (int i = 0; i < 40; ++i) {
    untraced.flows.push_back(
        FlowSpec{.config = small_config(StackKind::kIdealQuic, 16 * 1024)});
  }
  MultiFlowConfig sampled = untraced;
  sampled.trace_sample = 10;
  for (FlowSpec& spec : sampled.flows) spec.config.trace = true;

  const MultiFlowResult base = framework::run_flows(untraced);
  const MultiFlowResult traced = framework::run_flows(sampled);

  ASSERT_EQ(base.flows.size(), traced.flows.size());
  EXPECT_DOUBLE_EQ(base.fairness, traced.fairness);
  for (std::size_t f = 0; f < base.flows.size(); ++f) {
    EXPECT_EQ(base.flows[f].wire_hash, traced.flows[f].wire_hash) << f;
  }

  if (obs::kTraceEnabled) {
    // Deterministic subset: exactly the flows the sampler picks carry a
    // trace, and both runs' packet books agree.
    const obs::FlowSampler sampler(sampled.seed, sampled.trace_sample);
    std::size_t traced_flows = 0;
    for (std::size_t f = 0; f < traced.flows.size(); ++f) {
      const bool has_trace = traced.flows[f].trace != nullptr;
      // Multi-flow fabrics assign wire ids 10, 11, ... in flows[] order.
      EXPECT_EQ(has_trace,
                sampler.sampled(static_cast<std::uint32_t>(10 + f)))
          << f;
      traced_flows += has_trace ? 1 : 0;
    }
    EXPECT_GT(traced_flows, 0u);
    EXPECT_LT(traced_flows, traced.flows.size());
  }
}

TEST(TelemetryFleet, SketchTailMatchesExactQuantilesOfTheRun) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "trace compiled out";
  // Full-sample cross-check on a real run: trace every flow, rebuild the
  // exact wire-stage pacing-error population from the spans, and require
  // the fleet sketch's p50/p99 to land within one log bucket of the
  // exact percentile.
  MultiFlowConfig config;
  config.seed = 3;
  config.telemetry_window = Duration::millis(10);
  for (int i = 0; i < 20; ++i) {
    FlowSpec spec{.config = small_config(StackKind::kIdealQuic, 64 * 1024)};
    spec.config.trace = true;
    config.flows.push_back(spec);
  }
  const MultiFlowResult result = framework::run_flows(config);

  std::vector<std::int64_t> exact;
  for (const RunResult& flow : result.flows) {
    ASSERT_NE(flow.trace, nullptr);
    for (const obs::SpanEvent& ev : flow.trace->events) {
      if (ev.stage == obs::TraceStage::kWire && ev.intended.ns() != 0) {
        exact.push_back((ev.at - ev.intended).us());
      }
    }
  }
  ASSERT_FALSE(exact.empty());
  std::sort(exact.begin(), exact.end());

  const auto& sketches = result.metrics.sketches();
  const auto it = sketches.find("fleet/pacing_error_us/wire");
  ASSERT_NE(it, sketches.end());
  const obs::QuantileSketch& sketch = it->second;
  EXPECT_EQ(sketch.count(), static_cast<std::int64_t>(exact.size()));
  for (const double q : {0.5, 0.9, 0.99}) {
    const std::size_t rank = static_cast<std::size_t>(
        q * static_cast<double>(exact.size() - 1));
    EXPECT_LE(std::abs(obs::QuantileSketch::bucket_of(sketch.quantile(q)) -
                       obs::QuantileSketch::bucket_of(exact[rank])),
              1)
        << "q=" << q;
  }
}

// ------------------------------------------------ dispatch auditing

TEST(RunFlows, StrayFlowIdTripsDispatchAudit) {
  if (!check::kAuditEnabled) GTEST_SKIP() << "audit compiled out";
  std::vector<std::string> failures;
  check::set_audit_handler([&failures](const check::AuditFailure& failure) {
    failures.push_back(failure.to_string());
  });

  {
    MultiFlowConfig config;
    config.flows.push_back(
        FlowSpec{.config = small_config(StackKind::kQuiche, 64 * 1024)});
    config.flows.push_back(
        FlowSpec{.config = small_config(StackKind::kQuiche, 64 * 1024)});
    sim::EventLoop loop;
    sim::Rng rng(config.seed);
    std::vector<RunResult> live(config.flows.size());
    framework::Network net(loop, config, rng, live);

    // A packet whose flow id no endpoint registered: the old duel ternary
    // would silently hand it to flow B; the flow table must audit.
    net::Packet stray;
    stray.flow = 99;
    stray.kind = net::PacketKind::kQuicData;
    stray.size_bytes = 1200;
    net.path().wire_ingress()->deliver(stray);
    loop.run_until(sim::Time::zero() + Duration::seconds(1));
  }
  check::set_audit_handler({});

  ASSERT_FALSE(failures.empty());
  EXPECT_NE(failures.front().find("unregistered flow 99"), std::string::npos);
}

}  // namespace
}  // namespace quicsteps
