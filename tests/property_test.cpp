// Property-based suites: randomized traffic through every qdisc must
// satisfy conservation and ordering invariants; pacers must satisfy exact
// spacing algebra across a parameter sweep; CUBIC must match RFC 9438
// arithmetic.
#include <gtest/gtest.h>

#include <cmath>

#include "cc/cubic.hpp"
#include "kernel/os_model.hpp"
#include "kernel/qdisc_etf.hpp"
#include "kernel/qdisc_fifo.hpp"
#include "kernel/qdisc_fq.hpp"
#include "kernel/qdisc_fq_codel.hpp"
#include "kernel/qdisc_netem.hpp"
#include "kernel/qdisc_tbf.hpp"
#include "pacing/interval_pacer.hpp"
#include "pacing/leaky_bucket_pacer.hpp"

namespace quicsteps {
namespace {

using namespace quicsteps::sim::literals;
using net::DataRate;
using net::Packet;
using sim::Duration;
using sim::EventLoop;
using sim::Time;

// ------------------------------------------------- qdisc invariants

enum class QdiscUnderTest { kFifo, kFq, kEtf, kTbf, kNetem, kFqCodel };

const char* name_of(QdiscUnderTest q) {
  switch (q) {
    case QdiscUnderTest::kFifo: return "fifo";
    case QdiscUnderTest::kFq: return "fq";
    case QdiscUnderTest::kEtf: return "etf";
    case QdiscUnderTest::kTbf: return "tbf";
    case QdiscUnderTest::kNetem: return "netem";
    case QdiscUnderTest::kFqCodel: return "fq_codel";
  }
  return "?";
}

struct QdiscProperty {
  QdiscUnderTest qdisc;
  std::uint64_t seed;
};

class QdiscInvariants : public ::testing::TestWithParam<QdiscProperty> {
 protected:
  /// Drives `count` randomly timed packets (monotone txtimes for the
  /// timestamp-honoring qdiscs) and returns (delivered, counters).
  void run_random_traffic(kernel::Qdisc& qdisc, net::CollectorSink& sink,
                          EventLoop& loop, sim::Rng& rng, int count,
                          bool timestamps) {
    Time cursor;
    Time txtime_cursor;
    for (int i = 0; i < count; ++i) {
      cursor += rng.exponential_duration(200_us, 5_ms);
      // txtimes march forward from arrival (never in the past at enqueue).
      txtime_cursor =
          sim::max(txtime_cursor, cursor) +
          rng.uniform_duration(Duration::zero(), 500_us);
      const Time at = cursor;
      const Time txtime = txtime_cursor;
      loop.schedule_at(at, [&qdisc, i, txtime, timestamps] {
        Packet pkt;
        pkt.id = static_cast<std::uint64_t>(i);
        pkt.flow = 1;
        pkt.size_bytes = 1500;
        pkt.has_txtime = timestamps;
        pkt.txtime = txtime;
        qdisc.deliver(std::move(pkt));
      });
    }
    loop.run();
    (void)sink;
  }
};

TEST_P(QdiscInvariants, ConservationAndOrder) {
  const auto param = GetParam();
  EventLoop loop;
  sim::Rng rng(param.seed);
  kernel::OsModel os({}, rng.fork(1));
  net::CollectorSink sink;

  std::unique_ptr<kernel::Qdisc> qdisc;
  bool timestamps = false;
  switch (param.qdisc) {
    case QdiscUnderTest::kFifo:
      qdisc = std::make_unique<kernel::FifoQdisc>(
          loop, kernel::FifoQdisc::Config{}, &sink);
      break;
    case QdiscUnderTest::kFq:
      qdisc = std::make_unique<kernel::FqQdisc>(
          loop, kernel::FqQdisc::Config{}, os, &sink);
      timestamps = true;
      break;
    case QdiscUnderTest::kEtf:
      qdisc = std::make_unique<kernel::EtfQdisc>(
          loop, kernel::EtfQdisc::Config{}, os, &sink);
      timestamps = true;
      break;
    case QdiscUnderTest::kTbf:
      qdisc = std::make_unique<kernel::TbfQdisc>(
          loop,
          kernel::TbfQdisc::Config{
              .rate = DataRate::megabits_per_second(30),
              .burst_bytes = 4 * 1500,
              .limit_bytes = 40 * 1500},
          &sink);
      break;
    case QdiscUnderTest::kNetem:
      qdisc = std::make_unique<kernel::NetemQdisc>(
          loop, kernel::NetemQdisc::Config{.delay = 7_ms}, rng.fork(2),
          &sink);
      break;
    case QdiscUnderTest::kFqCodel:
      qdisc = std::make_unique<kernel::FqCodelQdisc>(
          loop,
          kernel::FqCodelQdisc::Config{
              .drain_rate = DataRate::megabits_per_second(30)},
          &sink);
      break;
  }

  constexpr int kCount = 600;
  run_random_traffic(*qdisc, sink, loop, rng, kCount, timestamps);

  // Conservation: every packet is delivered or counted as a drop, and the
  // queue drains completely once the event loop runs dry.
  const auto& counters = qdisc->counters();
  EXPECT_EQ(counters.packets_in, kCount) << name_of(param.qdisc);
  EXPECT_EQ(counters.packets_out + counters.packets_dropped, kCount)
      << name_of(param.qdisc);
  EXPECT_EQ(counters.packets_queued(), 0) << name_of(param.qdisc);
  EXPECT_EQ(static_cast<std::int64_t>(sink.packets().size()),
            counters.packets_out);

  // Same-flow ordering: none of the modelled qdiscs may reorder a single
  // flow when txtimes are monotone (netem has zero jitter here).
  for (std::size_t i = 1; i < sink.packets().size(); ++i) {
    EXPECT_LT(sink.packets()[i - 1].id, sink.packets()[i].id)
        << name_of(param.qdisc) << " reordered at position " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllQdiscs, QdiscInvariants,
    ::testing::Values(
        QdiscProperty{QdiscUnderTest::kFifo, 1},
        QdiscProperty{QdiscUnderTest::kFifo, 2},
        QdiscProperty{QdiscUnderTest::kFq, 3},
        QdiscProperty{QdiscUnderTest::kFq, 4},
        QdiscProperty{QdiscUnderTest::kEtf, 5},
        QdiscProperty{QdiscUnderTest::kEtf, 6},
        QdiscProperty{QdiscUnderTest::kTbf, 7},
        QdiscProperty{QdiscUnderTest::kTbf, 8},
        QdiscProperty{QdiscUnderTest::kNetem, 9},
        QdiscProperty{QdiscUnderTest::kFqCodel, 10}),
    [](const auto& info) {
      return std::string(name_of(info.param.qdisc)) + "_seed" +
             std::to_string(info.param.seed);
    });

// --------------------------------------------------- pacer algebra sweeps

struct PacerSweep {
  std::int64_t rate_mbps;
  std::int64_t packet_bytes;
};

class IntervalPacerSweep : public ::testing::TestWithParam<PacerSweep> {};

TEST_P(IntervalPacerSweep, SpacingIsExactlySizeOverRate) {
  const auto param = GetParam();
  const auto rate = DataRate::megabits_per_second(param.rate_mbps);
  pacing::IntervalPacer pacer(Duration::seconds(1));  // no clamp effect
  Time t = Time::zero() + 1_ms;
  pacer.on_packet_sent(t, param.packet_bytes, rate);
  for (int i = 0; i < 50; ++i) {
    const Time next = pacer.earliest_send_time(t, param.packet_bytes, rate);
    const double expected_us =
        static_cast<double>(param.packet_bytes) * 8.0 /
        static_cast<double>(param.rate_mbps);
    EXPECT_NEAR((next - t).to_micros(), expected_us, 0.01);
    pacer.on_packet_sent(next, param.packet_bytes, rate);
    t = next;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndSizes, IntervalPacerSweep,
    ::testing::Values(PacerSweep{5, 1500}, PacerSweep{40, 1500},
                      PacerSweep{40, 1200}, PacerSweep{100, 1500},
                      PacerSweep{1000, 1500}, PacerSweep{40, 300}),
    [](const auto& info) {
      return std::to_string(info.param.rate_mbps) + "mbit_" +
             std::to_string(info.param.packet_bytes) + "B";
    });

class BucketPacerSweep : public ::testing::TestWithParam<PacerSweep> {};

TEST_P(BucketPacerSweep, LongRunThroughputEqualsRate) {
  const auto param = GetParam();
  const auto rate = DataRate::megabits_per_second(param.rate_mbps);
  pacing::LeakyBucketPacer pacer(8 * param.packet_bytes);
  Time t = Time::zero();
  std::int64_t sent_bytes = 0;
  const int packets = 2000;
  for (int i = 0; i < packets; ++i) {
    const Time next = pacer.earliest_send_time(t, param.packet_bytes, rate);
    pacer.on_packet_sent(next, param.packet_bytes, rate);
    sent_bytes += param.packet_bytes;
    t = next;
  }
  // Aside from the initial bucket burst, long-run throughput must match
  // the configured rate within 1%.
  const double measured_bps =
      static_cast<double>(sent_bytes - 8 * param.packet_bytes) * 8.0 /
      (t - Time::zero()).to_seconds();
  EXPECT_NEAR(measured_bps / 1e6, static_cast<double>(param.rate_mbps),
              0.01 * static_cast<double>(param.rate_mbps));
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndSizes, BucketPacerSweep,
    ::testing::Values(PacerSweep{5, 1500}, PacerSweep{40, 1500},
                      PacerSweep{100, 1500}, PacerSweep{40, 600}),
    [](const auto& info) {
      return std::to_string(info.param.rate_mbps) + "mbit_" +
             std::to_string(info.param.packet_bytes) + "B";
    });

// -------------------------------------------------- CUBIC RFC arithmetic

TEST(CubicRfc, KMatchesClosedForm) {
  // After a congestion event at window W, K = cbrt(W*(1-beta)/C) seconds
  // (RFC 9438 §4.2, in MSS units).
  cc::Cubic::Config cfg;
  cfg.hystart = false;
  cc::Cubic cubic(cfg);

  cc::AckSample grow;
  grow.now = Time::zero() + 40_ms;
  grow.acked_bytes = 100 * cc::kMaxDatagramSize;
  grow.largest_acked_sent_time = Time::zero() + 1_ms;
  grow.latest_rtt = grow.smoothed_rtt = grow.min_rtt = 40_ms;
  grow.bytes_in_flight = 1 << 24;
  cubic.on_ack(grow);
  const double w_mss = static_cast<double>(cubic.cwnd_bytes()) /
                       static_cast<double>(cc::kMaxDatagramSize);

  cc::LossSample loss;
  loss.now = Time::zero() + 100_ms;
  loss.lost_packets = 3;
  loss.lost_bytes = 3 * cc::kMaxDatagramSize;
  loss.largest_lost_sent_time = Time::zero() + 90_ms;
  cubic.on_loss(loss);

  // Drive one CA ack to start the epoch, then read K from debug state.
  cc::AckSample ca = grow;
  ca.now = Time::zero() + 200_ms;
  ca.acked_bytes = cc::kMaxDatagramSize;
  ca.largest_acked_sent_time = Time::zero() + 150_ms;
  cubic.on_ack(ca);

  const double expected_k = std::cbrt(w_mss * 0.3 / 0.4);
  const std::string state = cubic.debug_state();
  const auto pos = state.find("k=");
  ASSERT_NE(pos, std::string::npos);
  const double actual_k = std::stod(state.substr(pos + 2));
  EXPECT_NEAR(actual_k, expected_k, 0.05 * expected_k);
}

TEST(CubicRfc, BetaReductionIsExact) {
  cc::Cubic::Config cfg;
  cfg.hystart = false;
  cc::Cubic cubic(cfg);
  const auto before = cubic.cwnd_bytes();
  cc::LossSample loss;
  loss.now = Time::zero() + 50_ms;
  loss.lost_packets = 1;
  loss.lost_bytes = cc::kMaxDatagramSize;
  loss.largest_lost_sent_time = Time::zero() + 45_ms;
  cubic.on_loss(loss);
  EXPECT_EQ(cubic.cwnd_bytes(),
            static_cast<std::int64_t>(static_cast<double>(before) * 0.7));
}

}  // namespace
}  // namespace quicsteps
