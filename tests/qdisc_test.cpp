// Unit tests for the qdisc suite: FIFO transparency, FQ txtime scheduling,
// ETF late-drops and delta handling, TBF shaping, netem delay, and the
// CoDel control law.
#include <gtest/gtest.h>

#include <numeric>

#include "kernel/os_model.hpp"
#include "kernel/qdisc_etf.hpp"
#include "kernel/qdisc_fifo.hpp"
#include "kernel/qdisc_fq.hpp"
#include "kernel/qdisc_fq_codel.hpp"
#include "kernel/qdisc_netem.hpp"
#include "kernel/qdisc_tbf.hpp"
#include "net/packet.hpp"
#include "sim/event_loop.hpp"

namespace quicsteps::kernel {
namespace {

using namespace quicsteps::sim::literals;
using net::CollectorSink;
using net::DataRate;
using net::Packet;
using sim::Duration;
using sim::EventLoop;
using sim::Time;

Packet make_packet(std::uint64_t id, std::int64_t size = 1500) {
  Packet p;
  p.id = id;
  p.size_bytes = size;
  return p;
}

Packet timed_packet(std::uint64_t id, Time txtime, std::int64_t size = 1500) {
  Packet p = make_packet(id, size);
  p.has_txtime = true;
  p.txtime = txtime;
  return p;
}

/// Records the loop time at which each packet reaches it (robust against
/// synchronous forwarding during deliver()).
class TimestampSink final : public net::PacketSink {
 public:
  explicit TimestampSink(EventLoop& loop) : loop_(loop) {}
  void deliver(Packet pkt) override {
    times_.push_back(loop_.now());
    packets_.push_back(std::move(pkt));
  }
  const std::vector<Time>& times() const { return times_; }
  const std::vector<Packet>& packets() const { return packets_; }

 private:
  EventLoop& loop_;
  std::vector<Time> times_;
  std::vector<Packet> packets_;
};

OsTimingConfig quiet_os() {
  // Deterministic OS: no slack or jitter, so scheduling tests are exact.
  OsTimingConfig cfg;
  cfg.hrtimer_slack_mean = Duration::zero();
  cfg.hrtimer_slack_stddev = Duration::zero();
  cfg.softirq_delay_chance = 0.0;
  cfg.syscall_jitter_mean = Duration::zero();
  cfg.wakeup_latency_mean = Duration::zero();
  cfg.wakeup_latency_stddev = Duration::zero();
  return cfg;
}

class QdiscTest : public ::testing::Test {
 protected:
  EventLoop loop;
  OsModel os{quiet_os(), sim::Rng(1)};
  CollectorSink sink;
};

TEST_F(QdiscTest, FifoForwardsImmediately) {
  FifoQdisc fifo(loop, {}, &sink);
  fifo.deliver(timed_packet(1, Time::zero() + 100_ms));
  EXPECT_EQ(sink.packets().size(), 1u);  // txtime ignored entirely
}

TEST_F(QdiscTest, FqHoldsUntilTxtime) {
  FqQdisc fq(loop, {}, os, &sink);
  fq.deliver(timed_packet(1, Time::zero() + 5_ms));
  EXPECT_TRUE(sink.packets().empty());
  loop.run();
  ASSERT_EQ(sink.packets().size(), 1u);
  EXPECT_EQ(loop.now(), Time::zero() + 5_ms);
}

TEST_F(QdiscTest, FqSendsLatePacketsImmediatelyInsteadOfDropping) {
  FqQdisc fq(loop, {}, os, &sink);
  loop.run_until(Time::zero() + 10_ms);
  fq.deliver(timed_packet(1, Time::zero() + 5_ms));  // already past
  EXPECT_EQ(sink.packets().size(), 1u);
  EXPECT_EQ(fq.counters().packets_dropped, 0);
}

TEST_F(QdiscTest, FqReleasesInTimestampOrder) {
  FqQdisc fq(loop, {}, os, &sink);
  fq.deliver(timed_packet(2, Time::zero() + 2_ms));
  fq.deliver(timed_packet(1, Time::zero() + 1_ms));
  loop.run();
  ASSERT_EQ(sink.packets().size(), 2u);
  EXPECT_EQ(sink.packets()[0].id, 1u);
  EXPECT_EQ(sink.packets()[1].id, 2u);
}

TEST_F(QdiscTest, FqPassesUntimedPacketsThrough) {
  FqQdisc fq(loop, {}, os, &sink);
  fq.deliver(make_packet(1));
  EXPECT_EQ(sink.packets().size(), 1u);
}

TEST_F(QdiscTest, FqDropsBeyondHorizon) {
  FqQdisc fq(loop, {.horizon = 1_s, .horizon_drop = true}, os, &sink);
  fq.deliver(timed_packet(1, Time::zero() + 2_s));
  EXPECT_EQ(fq.counters().packets_dropped, 1);
}

TEST_F(QdiscTest, FqRearmsForEarlierArrival) {
  // A later packet is enqueued first; an earlier txtime arrives afterwards
  // and must still release first, at its own time.
  FqQdisc fq(loop, {}, os, &sink);
  fq.deliver(timed_packet(2, Time::zero() + 10_ms));
  fq.deliver(timed_packet(1, Time::zero() + 1_ms));
  std::vector<Time> at;
  while (loop.run_one()) {
    while (at.size() < sink.packets().size()) at.push_back(loop.now());
  }
  ASSERT_EQ(at.size(), 2u);
  EXPECT_EQ(at[0], Time::zero() + 1_ms);
  EXPECT_EQ(at[1], Time::zero() + 10_ms);
}

Packet flow_packet(std::uint64_t id, std::uint32_t flow, Time txtime,
                   std::int64_t size = 1500) {
  Packet p = timed_packet(id, txtime, size);
  p.flow = flow;
  return p;
}

TEST_F(QdiscTest, FqCountsQueuedPacketsAcrossFlows) {
  FqQdisc fq(loop, {}, os, &sink);
  fq.deliver(flow_packet(1, 1, Time::zero() + 5_ms));
  fq.deliver(flow_packet(2, 1, Time::zero() + 6_ms));
  fq.deliver(flow_packet(3, 2, Time::zero() + 5_ms));
  EXPECT_EQ(fq.queued_packets(), 3u);
  EXPECT_EQ(fq.queued_packets(1), 2u);
  EXPECT_EQ(fq.queued_packets(2), 1u);
  EXPECT_EQ(fq.queued_packets(99), 0u);
  EXPECT_EQ(fq.flow_count(), 2u);
  EXPECT_EQ(fq.backlog_packets(), 3);
  loop.run();
  EXPECT_EQ(fq.queued_packets(), 0u);
  EXPECT_EQ(fq.backlog_packets(), 0);
  EXPECT_EQ(sink.packets().size(), 3u);
}

TEST_F(QdiscTest, FqReleasesAcrossFlowsInTimestampOrder) {
  // Distinct release times across flows leave strictly by timestamp —
  // DRR only arbitrates packets due in the same softirq.
  FqQdisc fq(loop, {}, os, &sink);
  fq.deliver(flow_packet(1, 1, Time::zero() + 3_ms));
  fq.deliver(flow_packet(2, 2, Time::zero() + 1_ms));
  fq.deliver(flow_packet(3, 3, Time::zero() + 2_ms));
  loop.run();
  ASSERT_EQ(sink.packets().size(), 3u);
  EXPECT_EQ(sink.packets()[0].id, 2u);
  EXPECT_EQ(sink.packets()[1].id, 3u);
  EXPECT_EQ(sink.packets()[2].id, 1u);
}

TEST_F(QdiscTest, FqServesSimultaneouslyDueFlowsRoundRobin) {
  // Two flows, four full-size packets each, all due at the same instant:
  // the softirq serves them DRR-style — quantum (2 frames) per flow per
  // round — instead of draining one flow before the other.
  FqQdisc fq(loop, {}, os, &sink);
  const Time due = Time::zero() + 1_ms;
  for (std::uint64_t i = 1; i <= 4; ++i) fq.deliver(flow_packet(i, 1, due));
  for (std::uint64_t i = 11; i <= 14; ++i) fq.deliver(flow_packet(i, 2, due));
  loop.run();
  ASSERT_EQ(sink.packets().size(), 8u);
  const std::vector<std::uint64_t> expected = {1, 2, 11, 12, 3, 4, 13, 14};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(sink.packets()[i].id, expected[i]) << "position " << i;
  }
}

TEST_F(QdiscTest, FqFlowRatePacesUntimedPackets) {
  // sch_fq maxrate: 12 Mbit/s spreads 1500-byte packets 1 ms apart even
  // without SO_TXTIME stamps. The first packet passes straight through.
  TimestampSink timestamps(loop);
  FqQdisc fq(loop, {}, os, &timestamps);
  fq.set_flow_rate(1, DataRate::megabits_per_second(12));
  for (std::uint64_t i = 1; i <= 3; ++i) {
    Packet p = make_packet(i);
    p.flow = 1;
    fq.deliver(p);
  }
  loop.run();
  ASSERT_EQ(timestamps.times().size(), 3u);
  EXPECT_EQ(timestamps.times()[0], Time::zero());
  EXPECT_EQ(timestamps.times()[1], Time::zero() + 1_ms);
  EXPECT_EQ(timestamps.times()[2], Time::zero() + 2_ms);
}

TEST_F(QdiscTest, FqFlowRateDoesNotDelayOtherFlows) {
  TimestampSink timestamps(loop);
  FqQdisc fq(loop, {}, os, &timestamps);
  fq.set_flow_rate(1, DataRate::kilobits_per_second(8));  // crawl
  Packet slow = make_packet(1);
  slow.flow = 1;
  Packet fast = make_packet(2);
  fast.flow = 2;
  fq.deliver(slow);  // passes (first packet), pushes flow 1's rate_next out
  fq.deliver(fast);  // unpaced flow: immediate, not behind flow 1
  EXPECT_EQ(timestamps.packets().size(), 2u);
  EXPECT_EQ(timestamps.times()[1], Time::zero());
}

TEST_F(QdiscTest, EtfDropsPacketsWithPastTxtime) {
  EtfQdisc etf(loop, {}, os, &sink);
  loop.run_until(Time::zero() + 10_ms);
  etf.deliver(timed_packet(1, Time::zero() + 5_ms));
  EXPECT_EQ(etf.counters().packets_dropped, 1);
  EXPECT_EQ(etf.late_drops(), 1);
  EXPECT_TRUE(sink.packets().empty());
}

TEST_F(QdiscTest, EtfRejectsUntimedPackets) {
  EtfQdisc etf(loop, {}, os, &sink);
  etf.deliver(make_packet(1));
  EXPECT_EQ(etf.counters().packets_dropped, 1);
}

TEST_F(QdiscTest, EtfReleasesNearTxtime) {
  EtfQdisc::Config cfg;
  cfg.delta = 200_us;
  cfg.driver_path_mean = 200_us;  // exactly consumes the window
  cfg.driver_path_stddev = Duration::zero();
  EtfQdisc etf(loop, cfg, os, &sink);
  etf.deliver(timed_packet(1, Time::zero() + 5_ms));
  loop.run();
  ASSERT_EQ(sink.packets().size(), 1u);
  EXPECT_EQ(loop.now(), Time::zero() + 5_ms);
}

TEST_F(QdiscTest, EtfOrdersByTxtime) {
  EtfQdisc::Config cfg;
  cfg.driver_path_stddev = Duration::zero();
  EtfQdisc etf(loop, cfg, os, &sink);
  etf.deliver(timed_packet(2, Time::zero() + 4_ms));
  etf.deliver(timed_packet(1, Time::zero() + 2_ms));
  loop.run();
  ASSERT_EQ(sink.packets().size(), 2u);
  EXPECT_EQ(sink.packets()[0].id, 1u);
}

TEST_F(QdiscTest, TbfShapesToConfiguredRate) {
  // 10 packets of 1500 B at 40 Mbit/s with a 1-packet bucket: packet 0
  // leaves on the full bucket immediately, then one packet per 300 us.
  TimestampSink stamped(loop);
  TbfQdisc tbf(loop,
               {.rate = DataRate::megabits_per_second(40),
                .burst_bytes = 1500,
                .limit_bytes = 1'000'000},
               &stamped);
  for (int i = 0; i < 10; ++i) tbf.deliver(make_packet(i));
  loop.run();
  ASSERT_EQ(stamped.times().size(), 10u);
  const Duration span = stamped.times().back() - stamped.times().front();
  EXPECT_GE(span.us(), 9 * 300 - 20);
  EXPECT_LE(span.us(), 9 * 300 + 50);
}

TEST_F(QdiscTest, TbfDropsWhenLimitExceeded) {
  TbfQdisc tbf(loop,
               {.rate = DataRate::megabits_per_second(1),
                .burst_bytes = 1500,
                .limit_bytes = 4500},
               &sink);
  for (int i = 0; i < 10; ++i) tbf.deliver(make_packet(i));
  loop.run();
  EXPECT_GT(tbf.counters().packets_dropped, 0);
  EXPECT_EQ(tbf.counters().packets_in, 10);
  EXPECT_EQ(tbf.counters().packets_queued(), 0);
}

TEST_F(QdiscTest, TbfBurstAllowsBackToBack) {
  // A deep bucket releases an idle-accumulated burst at once.
  TbfQdisc tbf(loop,
               {.rate = DataRate::megabits_per_second(40),
                .burst_bytes = 15000,
                .limit_bytes = 1'000'000},
               &sink);
  loop.run_until(Time::zero() + 100_ms);  // let the bucket fill
  for (int i = 0; i < 10; ++i) tbf.deliver(make_packet(i));
  EXPECT_EQ(sink.packets().size(), 10u);  // all released synchronously
}

TEST_F(QdiscTest, NetemDelaysByConfiguredAmount) {
  NetemQdisc netem(loop, {.delay = 20_ms}, sim::Rng(2), &sink);
  netem.deliver(make_packet(1));
  loop.run();
  EXPECT_EQ(loop.now(), Time::zero() + 20_ms);
  EXPECT_EQ(sink.packets().size(), 1u);
}

TEST_F(QdiscTest, NetemDropsAboveLimit) {
  NetemQdisc netem(loop, {.delay = 20_ms, .limit_packets = 2}, sim::Rng(2),
                   &sink);
  for (int i = 0; i < 5; ++i) netem.deliver(make_packet(i));
  loop.run();
  EXPECT_EQ(sink.packets().size(), 2u);
  EXPECT_EQ(netem.counters().packets_dropped, 3);
}

TEST_F(QdiscTest, NetemPreservesOrderWithConstantDelay) {
  NetemQdisc netem(loop, {.delay = 20_ms}, sim::Rng(2), &sink);
  for (int i = 0; i < 20; ++i) {
    loop.schedule_at(Time::zero() + Duration::micros(i * 100),
                     [&, i] { netem.deliver(make_packet(i)); });
  }
  loop.run();
  ASSERT_EQ(sink.packets().size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sink.packets()[i].id, (unsigned)i);
}

TEST_F(QdiscTest, FqCodelTransparentWhenUncongested) {
  FqCodelQdisc codel(loop, {}, &sink);
  for (int i = 0; i < 100; ++i) {
    loop.schedule_at(Time::zero() + Duration::micros(i * 300),
                     [&, i] { codel.deliver(make_packet(i)); });
  }
  loop.run();
  EXPECT_EQ(sink.packets().size(), 100u);
  EXPECT_EQ(codel.codel_drops(), 0);
}

TEST_F(QdiscTest, FqCodelDropsUnderSustainedQueueing) {
  // Drain at 1 Mbit/s while offering 100 packets at once: sojourn stays far
  // above the 5 ms target, so the control law must engage.
  FqCodelQdisc codel(loop, {.drain_rate = DataRate::megabits_per_second(1)},
                     &sink);
  for (int i = 0; i < 100; ++i) codel.deliver(make_packet(i));
  loop.run();
  EXPECT_GT(codel.codel_drops(), 0);
  EXPECT_EQ(codel.counters().packets_out + codel.counters().packets_dropped,
            100);
}

}  // namespace
}  // namespace quicsteps::kernel
