// Batched-datapath storage and scheduling tests: PacketSlab put/take
// round-trips and free-list recycling, the recycled-slot aliasing audit,
// drain-channel execution order against closure events (shared sequence
// counter), the run() train loop, and a slab-backed TBF splitting a burst
// train across a drop-tail boundary.
#include <gtest/gtest.h>

#include <vector>

#include "check/audit.hpp"
#include "kernel/qdisc_tbf.hpp"
#include "net/packet.hpp"
#include "net/packet_slab.hpp"
#include "sim/event_loop.hpp"

namespace quicsteps {
namespace {

using namespace quicsteps::sim::literals;
using net::DataRate;
using net::Packet;
using net::PacketSlab;
using sim::Duration;
using sim::EventClass;
using sim::EventLoop;
using sim::Time;

Packet make_packet(std::uint64_t id, std::int64_t size = 1500) {
  Packet p;
  p.id = id;
  p.flow = 1;
  p.size_bytes = size;
  return p;
}

/// Redirects audit failures into a list for the lifetime of the test
/// (same idiom as check_test.cpp — the default handler aborts).
class AuditCaptureTest : public ::testing::Test {
 protected:
  AuditCaptureTest() {
    check::set_audit_handler([this](const check::AuditFailure& failure) {
      failures_.push_back(failure.to_string());
    });
  }
  ~AuditCaptureTest() override { check::set_audit_handler({}); }

  std::vector<std::string> failures_;
};

// ------------------------------------------------------------ PacketSlab

TEST(PacketSlab, PutTakeRoundTripsThePacket) {
  PacketSlab slab;
  const PacketSlab::Ref ref = slab.put(make_packet(42, 1234));
  EXPECT_EQ(slab.live(), 1u);
  EXPECT_EQ(slab.size_bytes(ref), 1234u);
  EXPECT_EQ(slab.peek(ref).id, 42u);
  const Packet pkt = slab.take(ref);
  EXPECT_EQ(pkt.id, 42u);
  EXPECT_EQ(pkt.size_bytes, 1234);
  EXPECT_EQ(slab.live(), 0u);
}

TEST(PacketSlab, FreeListBoundsCapacityToTheHighWaterMark) {
  PacketSlab slab;
  // 1000 packets through the slab, never more than 4 in flight: the slab
  // must recycle slots instead of growing per packet.
  std::vector<PacketSlab::Ref> in_flight;
  for (std::uint64_t id = 0; id < 1000; ++id) {
    in_flight.push_back(slab.put(make_packet(id)));
    if (in_flight.size() == 4) {
      for (const PacketSlab::Ref ref : in_flight) {
        (void)slab.take(ref);
      }
      in_flight.clear();
    }
  }
  EXPECT_LE(slab.capacity(), 4u);
  EXPECT_EQ(slab.live(), in_flight.size());
}

TEST(PacketSlab, RefsStayDistinctAcrossRecycling) {
  PacketSlab slab;
  const PacketSlab::Ref first = slab.put(make_packet(1));
  (void)slab.take(first);
  const PacketSlab::Ref second = slab.put(make_packet(2));
  // Same slot, different generation: the recycled ref is a new ticket.
  EXPECT_EQ(first & PacketSlab::kSlotMask, second & PacketSlab::kSlotMask);
  EXPECT_NE(first, second);
  EXPECT_EQ(slab.peek(second).id, 2u);
  (void)slab.take(second);
}

TEST_F(AuditCaptureTest, StaleRefAfterRecyclingTripsTheAliasingAudit) {
  if (!check::kAuditEnabled) {
    GTEST_SKIP() << "built with -DQUICSTEPS_AUDIT=OFF";
  }
  PacketSlab slab;
  const PacketSlab::Ref stale = slab.put(make_packet(1));
  (void)slab.take(stale);
  (void)slab.put(make_packet(2));  // recycles the slot under a new gen
  (void)slab.peek(stale);          // the consumed ref must not alias packet 2
  ASSERT_EQ(failures_.size(), 1u);
  EXPECT_NE(failures_[0].find("recycled-slot aliasing"), std::string::npos);
}

TEST_F(AuditCaptureTest, DoubleTakeTripsTheAliasingAudit) {
  if (!check::kAuditEnabled) {
    GTEST_SKIP() << "built with -DQUICSTEPS_AUDIT=OFF";
  }
  PacketSlab slab;
  const PacketSlab::Ref ref = slab.put(make_packet(7));
  (void)slab.take(ref);
  (void)slab.take(ref);
  ASSERT_EQ(failures_.size(), 1u);
  EXPECT_NE(failures_[0].find("recycled-slot aliasing"), std::string::npos);
}

// -------------------------------------------------------- drain channels

void push_payload(void* ctx, std::uint32_t payload) {
  static_cast<std::vector<int>*>(ctx)->push_back(static_cast<int>(payload));
}

TEST(DrainChannel, InterleavesWithClosureEventsInScheduleOrder) {
  // Drain records and closures share one sequence counter, so converting a
  // schedule site from closures to drains must not reorder same-instant
  // events — this is what makes batched == legacy bit-identical.
  EventLoop loop;
  std::vector<int> order;
  const sim::DrainId ch =
      loop.register_drain(EventClass::kDelay, push_payload, &order);
  const Time t = Time::from_ns(1'000'000);
  loop.schedule_at(t, [&order] { order.push_back(100); });
  loop.schedule_drain_at(t, ch, 1);
  loop.schedule_drain_at(t, ch, 2);
  loop.schedule_at(t, [&order] { order.push_back(101); });
  loop.schedule_drain_at(t + Duration::micros(5), ch, 3);
  const std::size_t executed = loop.run();
  EXPECT_EQ(executed, 5u);
  EXPECT_EQ(order, (std::vector<int>{100, 1, 2, 101, 3}));
  EXPECT_EQ(loop.now(), t + Duration::micros(5));
}

TEST(DrainChannel, TrainLoopBatchesConsecutiveDrainRecords) {
  if (!sim::kLoopProfilingEnabled) {
    GTEST_SKIP() << "built with -DQUICSTEPS_TRACE=OFF";
  }
  EventLoop loop;
  std::vector<int> order;
  const sim::DrainId ch =
      loop.register_drain(EventClass::kTransmit, push_payload, &order);
  // A pacer-burst shape: one closure (the timer) followed by a train of
  // drain records at successive NIC completion times.
  loop.schedule_at(Time::from_ns(1000), [&order] { order.push_back(-1); });
  for (int i = 0; i < 16; ++i) {
    loop.schedule_drain_at(Time::from_ns(2000 + i * 10), ch,
                           static_cast<std::uint32_t>(i));
  }
  loop.run();
  ASSERT_EQ(order.size(), 17u);
  EXPECT_EQ(order.front(), -1);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[1 + i], i);
  EXPECT_EQ(loop.stats().drain_executed, 16u);
  // After the closure surfaces the first drain record, the rest of the
  // train rides the fast loop without re-entering the cursor search.
  EXPECT_GE(loop.stats().drain_batched, 15u);
}

TEST(DrainChannel, CancelledDrainRecordNeverFires) {
  EventLoop loop;
  std::vector<int> order;
  const sim::DrainId ch =
      loop.register_drain(EventClass::kWakeup, push_payload, &order);
  sim::EventHandle keep = loop.schedule_drain_at(Time::from_ns(500), ch, 1);
  sim::EventHandle dead = loop.schedule_drain_at(Time::from_ns(500), ch, 2);
  dead.cancel();
  EXPECT_TRUE(keep.pending());
  EXPECT_FALSE(dead.pending());
  loop.run();
  EXPECT_EQ(order, std::vector<int>{1});
  EXPECT_TRUE(loop.empty());
}

TEST(DrainChannel, RunUntilHonorsTheDeadlineForDrainRecords) {
  EventLoop loop;
  std::vector<int> order;
  const sim::DrainId ch =
      loop.register_drain(EventClass::kDelay, push_payload, &order);
  loop.schedule_drain_at(Time::from_ns(1000), ch, 1);
  loop.schedule_drain_at(Time::from_ns(2000), ch, 2);
  loop.schedule_drain_at(Time::from_ns(3000), ch, 3);
  loop.run_until(Time::from_ns(2000));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.pending_count(), 1u);
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// ------------------------------------------- slab-backed TBF drop trains

TEST(SlabTbf, BurstTrainSplitsAcrossTheDropTailBoundary) {
  // A 5-packet burst against a 2-packet FIFO: the accepted prefix flows
  // through the slab and out; the dropped tail must never occupy a slot —
  // after the run drains, every slot is free again.
  EventLoop loop;
  net::CollectorSink sink;
  PacketSlab slab;
  kernel::TbfQdisc::Config config;
  config.rate = DataRate::megabits_per_second(12);  // 1500 B per ms
  config.burst_bytes = 1500;
  config.limit_bytes = 3000;
  kernel::TbfQdisc tbf(loop, config, &sink);
  tbf.enable_batched(&slab);

  for (std::uint64_t id = 1; id <= 5; ++id) {
    tbf.deliver(make_packet(id));
  }
  // Packet 1 left on the initial token burst; 2 and 3 fill the FIFO;
  // 4 and 5 hit drop-tail before ever touching the slab.
  EXPECT_EQ(tbf.counters().packets_dropped, 2);
  EXPECT_EQ(tbf.backlog_packets(), 2u);
  EXPECT_EQ(slab.live(), 2u);

  loop.run();
  ASSERT_EQ(sink.packets().size(), 3u);
  EXPECT_EQ(sink.packets()[0].id, 1u);
  EXPECT_EQ(sink.packets()[1].id, 2u);
  EXPECT_EQ(sink.packets()[2].id, 3u);
  EXPECT_EQ(tbf.backlog_bytes(), 0);
  EXPECT_EQ(slab.live(), 0u);  // no stale refs left behind by the drops
}

TEST(SlabTbf, BatchedAndLegacyReleaseIdenticalSchedules) {
  // The same burst through a slab-backed and a legacy TBF must release at
  // identical instants — the batched queue only changes storage, never
  // token arithmetic.
  auto run_schedule = [](bool batched) {
    EventLoop loop;
    net::CollectorSink sink;
    PacketSlab slab;
    kernel::TbfQdisc::Config config;
    config.rate = DataRate::megabits_per_second(12);
    config.burst_bytes = 1500;
    config.limit_bytes = 100 * 1500;
    kernel::TbfQdisc tbf(loop, config, &sink);
    if (batched) tbf.enable_batched(&slab);
    std::vector<Time> times;
    for (std::uint64_t id = 1; id <= 8; ++id) {
      tbf.deliver(make_packet(id, 700 + static_cast<std::int64_t>(id) * 100));
    }
    while (loop.run_one()) times.push_back(loop.now());
    return times;
  };
  EXPECT_EQ(run_schedule(true), run_schedule(false));
}

}  // namespace
}  // namespace quicsteps
