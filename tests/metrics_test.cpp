// Unit tests for the metrics toolkit: summaries, CDFs, gap analysis,
// packet-train analysis (the paper's 0.1 ms rule), precision, and goodput.
#include <gtest/gtest.h>

#include "metrics/gap_analyzer.hpp"
#include "metrics/goodput.hpp"
#include "metrics/precision.hpp"
#include "metrics/stats.hpp"
#include "metrics/train_analyzer.hpp"

namespace quicsteps::metrics {
namespace {

using namespace quicsteps::sim::literals;
using net::Packet;
using sim::Duration;
using sim::Time;

Packet wire_packet(double ms, std::uint32_t flow = 1,
                   net::PacketKind kind = net::PacketKind::kQuicData) {
  Packet pkt;
  pkt.flow = flow;
  pkt.kind = kind;
  pkt.size_bytes = 1500;
  pkt.wire_time = Time::zero() + Duration::seconds_f(ms / 1e3);
  return pkt;
}

TEST(Stats, SummaryMeanAndStddev) {
  auto s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 0.001);  // sample stddev
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 9.0);
}

TEST(Stats, SummaryEdgeCases) {
  EXPECT_EQ(summarize({}).count, 0u);
  auto single = summarize({3.0});
  EXPECT_EQ(single.mean, 3.0);
  EXPECT_EQ(single.stddev, 0.0);
}

TEST(Stats, SummaryFormatting) {
  auto s = summarize({1.0, 2.0, 3.0});
  EXPECT_EQ(s.to_string(2), "2.00 ± 1.00");
}

TEST(Cdf, FractionBelowAndQuantile) {
  Cdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.fraction_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
}

TEST(Cdf, CurveIsMonotone) {
  Cdf cdf({5.0, 1.0, 3.0, 2.0, 4.0});
  auto curve = cdf.curve(10);
  ASSERT_EQ(curve.size(), 10u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
    EXPECT_GE(curve[i].first, curve[i - 1].first);
  }
}

TEST(Cdf, AsciiRenderingContainsLegend) {
  Cdf cdf({1.0, 2.0, 3.0});
  auto out = render_ascii_cdf({{"series-a", &cdf}}, 0.0, 4.0, 40, 8, "ms");
  EXPECT_NE(out.find("series-a"), std::string::npos);
  EXPECT_NE(out.find("ms"), std::string::npos);
}

TEST(GapAnalyzerTest, ComputesGapsAndFractions) {
  // Gaps: 0.012 ms (b2b), 0.5 ms, 2.0 ms.
  std::vector<Packet> capture = {wire_packet(0.0), wire_packet(0.012),
                                 wire_packet(0.512), wire_packet(2.512)};
  auto report = GapAnalyzer().analyze(capture);
  ASSERT_EQ(report.gaps_ms.size(), 3u);
  EXPECT_NEAR(report.back_to_back_fraction, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(report.below_1500us_fraction, 2.0 / 3.0, 1e-9);
}

TEST(GapAnalyzerTest, FiltersByFlowAndKind) {
  std::vector<Packet> capture = {
      wire_packet(0.0), wire_packet(1.0, 2),  // other flow
      wire_packet(2.0, 1, net::PacketKind::kQuicAck),  // ack, ignored
      wire_packet(3.0)};
  auto times = GapAnalyzer().data_times(capture);
  EXPECT_EQ(times.size(), 2u);
}

TEST(GapAnalyzerTest, EmptyAndSingletonCaptures) {
  EXPECT_TRUE(GapAnalyzer().analyze({}).gaps_ms.empty());
  EXPECT_TRUE(GapAnalyzer().analyze({wire_packet(0.0)}).gaps_ms.empty());
}

TEST(TrainAnalyzerTest, PaperRuleSplitsAtPointOneMs) {
  // Train of 3 (gaps 0.05 ms), then 0.3 ms gap, then train of 2.
  std::vector<Packet> capture = {wire_packet(0.00), wire_packet(0.05),
                                 wire_packet(0.10), wire_packet(0.40),
                                 wire_packet(0.45)};
  auto report = TrainAnalyzer().analyze(capture);
  EXPECT_EQ(report.total_packets, 5);
  ASSERT_EQ(report.train_lengths.size(), 2u);
  EXPECT_EQ(report.train_lengths[0], 3u);
  EXPECT_EQ(report.train_lengths[1], 2u);
  // Packets-by-length weighting: 3 packets in length-3, 2 in length-2.
  EXPECT_EQ(report.packets_by_length.at(3), 3);
  EXPECT_EQ(report.packets_by_length.at(2), 2);
  EXPECT_DOUBLE_EQ(report.fraction_in_trains_up_to(2), 0.4);
  EXPECT_DOUBLE_EQ(report.fraction_in_trains_up_to(5), 1.0);
}

TEST(TrainAnalyzerTest, SinglePacketIsTrainOfOne) {
  auto report = TrainAnalyzer().analyze({wire_packet(0.0)});
  EXPECT_EQ(report.total_packets, 1);
  EXPECT_EQ(report.max_train_length(), 1u);
}

TEST(TrainAnalyzerTest, ExactThresholdBreaksTrain) {
  // Gap of exactly 0.1 ms: the paper's rule is "< 0.1 ms", so it breaks.
  std::vector<Packet> capture = {wire_packet(0.0), wire_packet(0.1)};
  auto report = TrainAnalyzer().analyze(capture);
  EXPECT_EQ(report.train_lengths.size(), 2u);
}

TEST(TrainAnalyzerTest, PacketWeightedCdf) {
  // 1 train of 4 + 4 singletons: packet-weighted CDF at length 1 = 0.5.
  std::vector<Packet> capture;
  double t = 0.0;
  for (int i = 0; i < 4; ++i) {
    capture.push_back(wire_packet(t));
    t += 0.01;
  }
  for (int i = 0; i < 4; ++i) {
    t += 1.0;
    capture.push_back(wire_packet(t));
  }
  auto cdf = TrainAnalyzer().analyze(capture).packet_train_cdf();
  EXPECT_DOUBLE_EQ(cdf.fraction_below(1.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(4.0), 1.0);
}

TEST(PrecisionTest, StddevOfOffsets) {
  std::vector<Packet> capture;
  // Offsets: +0.1, -0.1, +0.1, -0.1 ms -> mean 0, stddev ~0.115.
  for (int i = 0; i < 4; ++i) {
    Packet pkt = wire_packet(static_cast<double>(i));
    pkt.expected_send_time =
        pkt.wire_time - Duration::micros(i % 2 == 0 ? 100 : -100);
    capture.push_back(pkt);
  }
  auto report = PrecisionAnalyzer().analyze(capture);
  EXPECT_EQ(report.samples, 4u);
  EXPECT_NEAR(report.summary_ms.mean, 0.0, 1e-9);
  EXPECT_NEAR(report.precision_ms, 0.11547, 1e-4);
}

TEST(PrecisionTest, SkipsNonLeadGsoSegments) {
  Packet lead = wire_packet(0.0);
  lead.gso_buffer_id = 1;
  lead.gso_segment_index = 0;
  Packet tail = wire_packet(0.012);
  tail.gso_buffer_id = 1;
  tail.gso_segment_index = 1;
  auto report = PrecisionAnalyzer().analyze({lead, tail});
  EXPECT_EQ(report.samples, 1u);
}

TEST(GoodputTest, ComputesRate) {
  auto report = compute_goodput(5'000'000, Time::zero() + 1_s,
                                Time::zero() + 2_s);
  EXPECT_NEAR(report.goodput.mbps(), 40.0, 0.01);
  EXPECT_EQ(report.elapsed, 1_s);
}

TEST(GoodputTest, IncompleteTransferYieldsZero) {
  auto report =
      compute_goodput(5'000'000, Time::zero() + 1_s, Time::infinite());
  EXPECT_TRUE(report.goodput.is_zero());
}

}  // namespace
}  // namespace quicsteps::metrics
