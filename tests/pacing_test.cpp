// Unit tests for the pacing strategies: interval pacer spacing and
// no-credit property; leaky bucket credit accrual, burst-after-idle, and
// depth handling.
#include <gtest/gtest.h>

#include "pacing/interval_pacer.hpp"
#include "pacing/leaky_bucket_pacer.hpp"
#include "pacing/pacer.hpp"

namespace quicsteps::pacing {
namespace {

using namespace quicsteps::sim::literals;
using net::DataRate;
using sim::Duration;
using sim::Time;

constexpr std::int64_t kPkt = 1500;
const DataRate kRate = DataRate::megabits_per_second(40);  // 300 us / pkt

TEST(IntervalPacer, FirstPacketGoesImmediately) {
  IntervalPacer pacer;
  EXPECT_EQ(pacer.earliest_send_time(Time::zero() + 1_ms, kPkt, kRate),
            Time::zero() + 1_ms);
}

TEST(IntervalPacer, SpacesBySizeOverRate) {
  IntervalPacer pacer;
  Time t = Time::zero() + 1_ms;
  pacer.on_packet_sent(t, kPkt, kRate);
  const Time next = pacer.earliest_send_time(t, kPkt, kRate);
  EXPECT_EQ((next - t).us(), 300);
}

TEST(IntervalPacer, ScheduleAccumulatesWhenCommittingFutureTimes) {
  // quiche commits txtimes possibly ahead of "now": the schedule must keep
  // marching by size/rate each time.
  IntervalPacer pacer;
  Time now = Time::zero() + 1_ms;
  Time planned = now;
  for (int i = 0; i < 5; ++i) {
    planned = pacer.earliest_send_time(now, kPkt, kRate);
    pacer.on_packet_sent(planned, kPkt, kRate);
  }
  EXPECT_EQ((planned - now).us(), 4 * 300);
}

TEST(IntervalPacer, NoCreditAfterIdle) {
  // After a long idle period the schedule restarts at now: packets do NOT
  // burst (the defining difference from the leaky bucket).
  IntervalPacer pacer;
  pacer.on_packet_sent(Time::zero() + 1_ms, kPkt, kRate);
  const Time later = Time::zero() + 100_ms;
  EXPECT_EQ(pacer.earliest_send_time(later, kPkt, kRate), later);
  pacer.on_packet_sent(later, kPkt, kRate);
  // And the one after is again spaced by 300 us, not allowed immediately.
  EXPECT_EQ((pacer.earliest_send_time(later, kPkt, kRate) - later).us(), 300);
}

TEST(IntervalPacer, ZeroOrInfiniteRateNeverDelays) {
  IntervalPacer pacer;
  pacer.on_packet_sent(Time::zero(), kPkt, DataRate::zero());
  EXPECT_EQ(pacer.earliest_send_time(Time::zero() + 1_ms, kPkt,
                                     DataRate::zero()),
            Time::zero() + 1_ms);
  pacer.on_packet_sent(Time::zero() + 1_ms, kPkt, DataRate::infinite());
  EXPECT_EQ(pacer.earliest_send_time(Time::zero() + 2_ms, kPkt,
                                     DataRate::infinite()),
            Time::zero() + 2_ms);
}

TEST(LeakyBucket, InitialBucketIsFull) {
  LeakyBucketPacer pacer(16 * kPkt);
  // 16 packets may leave immediately.
  Time t = Time::zero() + 1_ms;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(pacer.earliest_send_time(t, kPkt, kRate), t) << "packet " << i;
    pacer.on_packet_sent(t, kPkt, kRate);
  }
  // The 17th must wait ~one packet interval.
  const Time next = pacer.earliest_send_time(t, kPkt, kRate);
  EXPECT_NEAR((next - t).to_micros(), 300.0, 5.0);
}

TEST(LeakyBucket, CreditRefillsAtRate) {
  LeakyBucketPacer pacer(16 * kPkt);
  Time t = Time::zero() + 1_ms;
  for (int i = 0; i < 16; ++i) pacer.on_packet_sent(t, kPkt, kRate);
  // After 300 us exactly one packet's worth of credit is back.
  t += 300_us;
  EXPECT_EQ(pacer.earliest_send_time(t, kPkt, kRate), t);
  pacer.on_packet_sent(t, kPkt, kRate);
  EXPECT_GT(pacer.earliest_send_time(t, kPkt, kRate), t);
}

TEST(LeakyBucket, BurstAfterIdle) {
  // The picoquic signature: drain the bucket, go idle, and a full bucket
  // burst is available again.
  LeakyBucketPacer pacer(16 * kPkt);
  Time t = Time::zero() + 1_ms;
  for (int i = 0; i < 16; ++i) pacer.on_packet_sent(t, kPkt, kRate);
  ASSERT_GT(pacer.earliest_send_time(t, kPkt, kRate), t);
  // 16 packets at 40 Mbit/s need 4.8 ms of refill; idle for 10 ms.
  t += 10_ms;
  int sendable = 0;
  while (pacer.earliest_send_time(t, kPkt, kRate) == t && sendable < 100) {
    pacer.on_packet_sent(t, kPkt, kRate);
    ++sendable;
  }
  EXPECT_EQ(sendable, 16);
}

TEST(LeakyBucket, ShallowBucketPacesSmoothly) {
  // picoquic's BBR path: depth ~1 packet means every packet waits its
  // interval — near-perfect spacing.
  LeakyBucketPacer pacer(kPkt);
  Time t = Time::zero() + 1_ms;
  pacer.on_packet_sent(t, kPkt, kRate);
  for (int i = 0; i < 10; ++i) {
    const Time next = pacer.earliest_send_time(t, kPkt, kRate);
    EXPECT_NEAR((next - t).to_micros(), 300.0, 5.0);
    pacer.on_packet_sent(next, kPkt, kRate);
    t = next;
  }
}

TEST(LeakyBucket, SetDepthClampsTokens) {
  LeakyBucketPacer pacer(16 * kPkt);
  pacer.set_depth(2 * kPkt);
  EXPECT_LE(pacer.tokens(), 2.0 * kPkt);
}

TEST(LeakyBucket, WaitTimeMatchesDeficit) {
  LeakyBucketPacer pacer(kPkt);
  Time t = Time::zero() + 1_ms;
  pacer.on_packet_sent(t, kPkt, kRate);  // bucket now empty
  // Two packets of deficit => 600 us wait for a 3000 B packet.
  const Time next = pacer.earliest_send_time(t, 3000, kRate);
  EXPECT_NEAR((next - t).to_micros(), 600.0, 5.0);
}

TEST(Factory, MakesConfiguredKind) {
  EXPECT_STREQ(make_pacer({.kind = PacerKind::kNone})->name(), "none");
  EXPECT_STREQ(make_pacer({.kind = PacerKind::kInterval})->name(), "interval");
  EXPECT_STREQ(make_pacer({.kind = PacerKind::kLeakyBucket})->name(),
               "leaky-bucket");
}

TEST(NullPacer, NeverDelays) {
  NullPacer pacer;
  pacer.on_packet_sent(Time::zero(), kPkt, kRate);
  EXPECT_EQ(pacer.earliest_send_time(Time::zero() + 1_ms, kPkt, kRate),
            Time::zero() + 1_ms);
}

}  // namespace
}  // namespace quicsteps::pacing
