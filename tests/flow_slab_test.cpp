// FlowStateSlab tests, mirroring the PacketSlab suite (slab_test.cpp):
// two-phase construction (reserve -> OS lane -> record lane), free-list
// slot recycling under the fixed capacity, and generation-checked handles
// that audit instead of aliasing a recycled flow's state.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/audit.hpp"
#include "framework/flow_slab.hpp"
#include "kernel/os_model.hpp"
#include "sim/random.hpp"

namespace quicsteps {
namespace {

using framework::FlowStateSlab;

/// A minimal record standing in for SenderHost: borrows the slot's
/// OsModel& (the slab's contract) and counts destructions.
struct TestRecord {
  TestRecord(kernel::OsModel& os, int value, int* destroyed)
      : os(&os), value(value), destroyed(destroyed) {}
  ~TestRecord() {
    if (destroyed != nullptr) ++*destroyed;
  }
  kernel::OsModel* os;
  int value;
  int* destroyed;
};

using Slab = FlowStateSlab<TestRecord>;

Slab::Handle emplace(Slab& slab, int value, int* destroyed = nullptr) {
  const Slab::Handle h = slab.reserve_slot();
  kernel::OsModel& os =
      slab.emplace_os(h, kernel::OsTimingConfig{}, sim::Rng(7));
  slab.emplace_record(h, os, value, destroyed);
  return h;
}

/// Redirects audit failures into a list for the lifetime of the test
/// (same idiom as slab_test.cpp — the default handler aborts).
class FlowSlabAuditTest : public ::testing::Test {
 protected:
  FlowSlabAuditTest() {
    check::set_audit_handler([this](const check::AuditFailure& failure) {
      failures_.push_back(failure.to_string());
    });
  }
  ~FlowSlabAuditTest() override { check::set_audit_handler({}); }

  std::vector<std::string> failures_;
};

TEST(FlowStateSlab, TwoPhaseEmplaceRoundTrips) {
  Slab slab(4);
  const Slab::Handle h = emplace(slab, 42);
  EXPECT_EQ(slab.size(), 1u);
  EXPECT_EQ(slab.capacity(), 4u);
  EXPECT_TRUE(slab.alive(h));
  EXPECT_EQ(slab.record(h).value, 42);
  // The record's borrowed OsModel is the slot's own kernel lane entry.
  EXPECT_EQ(slab.record(h).os, &slab.os(h));
}

TEST(FlowStateSlab, RecordsDoNotMoveAsSlotsFill) {
  // The raw-lane layout promise: earlier records stay put while later
  // slots are constructed (vector storage would reallocate and move).
  Slab slab(16);
  const Slab::Handle first = emplace(slab, 0);
  TestRecord* before = &slab.record(first);
  kernel::OsModel* os_before = &slab.os(first);
  for (int i = 1; i < 16; ++i) emplace(slab, i);
  EXPECT_EQ(&slab.record(first), before);
  EXPECT_EQ(&slab.os(first), os_before);
}

TEST(FlowStateSlab, DestroyRunsTheRecordDestructorAndRecyclesTheSlot) {
  Slab slab(2);
  int destroyed = 0;
  const Slab::Handle h = emplace(slab, 1, &destroyed);
  slab.destroy(h);
  EXPECT_EQ(destroyed, 1);
  EXPECT_EQ(slab.size(), 0u);
  EXPECT_FALSE(slab.alive(h));

  // Same slot, different generation: the recycled handle is a new ticket.
  const Slab::Handle next = emplace(slab, 2);
  EXPECT_EQ(h & Slab::kSlotMask, next & Slab::kSlotMask);
  EXPECT_NE(h, next);
  EXPECT_EQ(slab.record(next).value, 2);
}

TEST(FlowStateSlab, ClearDestroysEveryLiveRecord) {
  Slab slab(8);
  int destroyed = 0;
  std::vector<Slab::Handle> handles;
  for (int i = 0; i < 8; ++i) handles.push_back(emplace(slab, i, &destroyed));
  slab.clear();
  EXPECT_EQ(destroyed, 8);
  EXPECT_EQ(slab.size(), 0u);
  for (const Slab::Handle h : handles) EXPECT_FALSE(slab.alive(h));
}

TEST_F(FlowSlabAuditTest, StaleHandleAfterRecyclingTripsTheAliasingAudit) {
  if (!check::kAuditEnabled) {
    GTEST_SKIP() << "built with -DQUICSTEPS_AUDIT=OFF";
  }
  Slab slab(2);
  const Slab::Handle stale = emplace(slab, 1);
  slab.destroy(stale);
  (void)emplace(slab, 2);  // recycles the slot under a new generation
  (void)slab.record(stale);  // must not alias record 2
  ASSERT_FALSE(failures_.empty());
  EXPECT_NE(failures_[0].find("recycled-slot aliasing"), std::string::npos);
}

TEST_F(FlowSlabAuditTest, RecordBeforeOsTripsTheTwoPhaseAudit) {
  if (!check::kAuditEnabled) {
    GTEST_SKIP() << "built with -DQUICSTEPS_AUDIT=OFF";
  }
  Slab slab(1);
  const Slab::Handle h = slab.reserve_slot();
  kernel::OsModel dummy(kernel::OsTimingConfig{}, sim::Rng(1));
  slab.emplace_record(h, dummy, 1, nullptr);
  ASSERT_FALSE(failures_.empty());
  EXPECT_NE(failures_[0].find("before its OsModel"), std::string::npos);
}

}  // namespace
}  // namespace quicsteps
