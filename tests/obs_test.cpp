// Observability spine tests (src/obs/): TraceBus mechanics, GSO span
// expansion, Histogram/MetricsRegistry determinism, timeline
// reconstruction + per-stage pacing error, byte-pinned exporter goldens,
// and a traced end-to-end run whose span chains must be complete and must
// agree with the wire capture and metrics::PrecisionAnalyzer.
#include <map>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/quicsteps.hpp"

namespace quicsteps {
namespace {

using framework::ExperimentConfig;
using framework::Runner;
using framework::StackKind;
using obs::SpanEvent;
using obs::TraceBus;
using obs::TraceData;
using obs::TraceStage;

net::Packet span_packet(std::uint64_t id, std::uint64_t number,
                        std::uint32_t flow, std::int64_t bytes,
                        sim::Time intended = sim::Time::from_ns(0)) {
  net::Packet pkt;
  pkt.id = id;
  pkt.packet_number = number;
  pkt.flow = flow;
  pkt.size_bytes = bytes;
  pkt.expected_send_time = intended;
  return pkt;
}

// ------------------------------------------------------------- TraceBus

TEST(TraceBus, ComponentIdsFollowWiringOrder) {
  TraceBus bus;
  EXPECT_EQ(bus.register_component("stack"), 0u);
  EXPECT_EQ(bus.register_component("qdisc/fq"), 1u);
  EXPECT_EQ(bus.register_component("nic"), 2u);
  ASSERT_EQ(bus.component_names().size(), 3u);
  EXPECT_EQ(bus.component_names()[1], "qdisc/fq");

  bus.publish(obs::make_span(TraceStage::kNicTx, 2,
                             sim::Time::from_ns(5'000),
                             span_packet(1, 1, 1, 1200)));
  EXPECT_EQ(bus.events().size(), 1u);

  TraceData data = bus.take();
  EXPECT_EQ(data.events.size(), 1u);
  EXPECT_EQ(data.components.size(), 3u);
  EXPECT_TRUE(bus.events().empty());     // the bus is drained...
  EXPECT_TRUE(bus.component_names().empty());  // ...table and all
}

TEST(TraceBus, GsoBufferExpandsIntoPerSegmentSpans) {
  TraceBus bus;
  const std::uint16_t id = bus.register_component("socket");

  auto segments = std::make_shared<std::vector<net::Packet>>();
  segments->push_back(span_packet(10, 100, 1, 1200, sim::Time::from_ns(1000)));
  segments->push_back(span_packet(11, 101, 1, 1200, sim::Time::from_ns(2000)));
  net::Packet carrier = span_packet(99, 100, 1, 2400);
  carrier.gso_segments = segments;
  ASSERT_TRUE(carrier.is_gso_buffer());

  obs::publish_packet_span(&bus, TraceStage::kSocketWrite, id,
                           sim::Time::from_ns(3000), carrier);
  // The carrier id never appears: each wire packet keeps its own chain.
  ASSERT_EQ(bus.events().size(), 2u);
  EXPECT_EQ(bus.events()[0].packet_id, 10u);
  EXPECT_EQ(bus.events()[1].packet_id, 11u);
  EXPECT_EQ(bus.events()[1].intended.ns(), 2000);
  EXPECT_EQ(bus.events()[1].at.ns(), 3000);

  obs::publish_packet_span(&bus, TraceStage::kSocketWrite, id,
                           sim::Time::from_ns(4000),
                           span_packet(12, 102, 1, 1200));
  EXPECT_EQ(bus.events().size(), 3u);  // non-GSO publishes exactly one
}

TEST(TraceBus, PublishPacketSpanWithNullBusIsANoOp) {
  // Direct callers (not going through QUICSTEPS_TRACE_SPAN, which checks
  // first) may hold a null bus when tracing is disabled.
  obs::publish_packet_span(nullptr, TraceStage::kSocketWrite, 0,
                           sim::Time::from_ns(1000),
                           span_packet(1, 100, 1, 1200));
}

// ----------------------------------------------- Histogram and registry

TEST(Histogram, BucketsByInclusiveUpperEdgeWithOverflow) {
  obs::Histogram h({0, 10});
  h.observe(5);
  h.observe(20);
  EXPECT_EQ(h.to_string(),
            "count=2 sum=25 min=5 max=20 under=0 le0=0 le10=1 over=1");
}

TEST(Histogram, DefaultPacingBoundsCoverBothSigns) {
  obs::Histogram h;
  h.observe(-20'000);  // below the lowest edge -> explicit underflow
  h.observe(0);
  h.observe(200'000);  // beyond the highest edge -> overflow
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.min(), -20'000);
  EXPECT_EQ(h.max(), 200'000);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.bucket_counts().front(), 0);  // not clipped into a bucket
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_EQ(h.bucket_counts().back(), 1);
}

TEST(Histogram, UnderAndOverflowAreNeverSilent) {
  // The regression this guards: out-of-range mass used to be invisible in
  // the rendering (underflow widened the first bucket, overflow hid
  // behind "rest="). Both ends must show up in to_string verbatim.
  obs::Histogram h({-10, 10});
  h.observe(-50);
  h.observe(-50);
  h.observe(0);
  h.observe(99);
  EXPECT_EQ(h.underflow(), 2);
  EXPECT_EQ(h.overflow(), 1);
  // min/max/count/sum still include the out-of-range samples.
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), -1);
  EXPECT_EQ(h.to_string(),
            "count=4 sum=-1 min=-50 max=99 under=2 le-10=0 le10=1 over=1");
}

TEST(MetricsRegistry, EmitsSortedAcrossKindsRegardlessOfInsertionOrder) {
  obs::MetricsRegistry reg;
  reg.add_counter("zz/events", 2);
  reg.add_counter("zz/events", 3);  // counters accumulate
  reg.set_gauge("aa/depth", 7);
  reg.set_gauge("aa/depth", 9);  // gauges last-write-win
  reg.histogram("mm/err").observe(5);
  EXPECT_EQ(reg.to_string(),
            "aa/depth: gauge 9\n"
            "mm/err: histogram count=1 sum=5 min=5 max=5 under=0 "
            "le-10000=0 le-1000=0 le-100=0 le-10=0 le0=0 le10=1 le100=0 "
            "le1000=0 le10000=0 le100000=0 over=0\n"
            "zz/events: counter 5\n");
}

TEST(MetricsRegistry, CountersTableFoldsIntoPerRowGauges) {
  net::Counters c;
  c.count_in(100);
  c.count_in(100);
  c.count_out(100);
  c.count_drop(100);
  net::CountersTable table;
  table.add("tbf", c);

  obs::MetricsRegistry reg;
  reg.add_counters_table("bottleneck/", table);
  EXPECT_EQ(reg.gauges().at("bottleneck/tbf/packets_in"), 2);
  EXPECT_EQ(reg.gauges().at("bottleneck/tbf/packets_out"), 1);
  EXPECT_EQ(reg.gauges().at("bottleneck/tbf/packets_dropped"), 1);
  EXPECT_EQ(reg.gauges().at("bottleneck/tbf/queue_peak"), 2);
}

// ------------------------------------------------ timeline reconstruction

TraceData two_packet_trace() {
  TraceData data;
  data.components = {"stack", "nic"};
  // Flow 1, packet 42: paced, full chain.
  const auto paced =
      span_packet(42, 7, 1, 1200, sim::Time::from_ns(90'000));
  data.events.push_back(obs::make_span(TraceStage::kPacerRelease, 0,
                                       sim::Time::from_ns(100'000), paced));
  data.events.push_back(obs::make_span(TraceStage::kWire, 1,
                                       sim::Time::from_ns(150'000), paced));
  data.events.push_back(obs::make_span(TraceStage::kDelivery, 1,
                                       sim::Time::from_ns(200'000), paced));
  // Flow 0, packet 9: an unpaced ACK seen only at the wire.
  data.events.push_back(obs::make_span(TraceStage::kWire, 1,
                                       sim::Time::from_ns(120'000),
                                       span_packet(9, 3, 0, 80)));
  return data;
}

TEST(PathTimeline, GroupsByFlowAndPacketIdInDeterministicOrder) {
  const auto timelines = obs::build_timelines(two_packet_trace());
  ASSERT_EQ(timelines.size(), 2u);
  EXPECT_EQ(timelines[0].flow, 0u);  // flow-major order
  EXPECT_EQ(timelines[0].packet_id, 9u);
  EXPECT_FALSE(timelines[0].complete());
  EXPECT_EQ(timelines[1].flow, 1u);
  EXPECT_EQ(timelines[1].packet_id, 42u);
  EXPECT_EQ(timelines[1].spans.size(), 3u);
  EXPECT_EQ(timelines[1].intended.ns(), 90'000);
  EXPECT_TRUE(timelines[1].complete());
  EXPECT_FALSE(timelines[1].dropped());
  EXPECT_EQ(timelines[1].stage_time(TraceStage::kWire).ns(), 150'000);
  EXPECT_EQ(timelines[1].stage_time(TraceStage::kQdiscDrop),
            sim::Time::infinite());
  EXPECT_EQ(obs::count_complete(timelines), 1);

  const auto flow1 = obs::build_timelines(two_packet_trace(), 1);
  ASSERT_EQ(flow1.size(), 1u);
  EXPECT_EQ(flow1[0].packet_id, 42u);
}

TEST(PathTimeline, StageErrorsDiffAgainstIntentInPathOrder) {
  const auto reports =
      obs::stage_errors(obs::build_timelines(two_packet_trace()));
  // Only the paced packet contributes; its three stages appear in path
  // order with exact microsecond errors (at - intended).
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(reports[0].stage, TraceStage::kPacerRelease);
  EXPECT_EQ(reports[0].error_us.sum(), 10);
  EXPECT_EQ(reports[1].stage, TraceStage::kWire);
  EXPECT_EQ(reports[1].error_us.sum(), 60);
  EXPECT_EQ(reports[2].stage, TraceStage::kDelivery);
  EXPECT_EQ(reports[2].error_us.sum(), 110);
  EXPECT_DOUBLE_EQ(reports[2].mean_us(), 110.0);
  for (const auto& report : reports) {
    EXPECT_EQ(report.error_us.count(), 1);
  }
}

TEST(PathTimeline, SummarizeTraceMatchesTimelineDerivation) {
  // The streaming digest must agree with the materialized derivation on
  // every aggregate it replaces in the per-run metrics registry.
  const TraceData data = two_packet_trace();
  const auto timelines = obs::build_timelines(data);
  const auto reports = obs::stage_errors(timelines);
  const obs::TraceSummary summary = obs::summarize_trace(data);

  EXPECT_EQ(summary.complete_chains, obs::count_complete(timelines));
  ASSERT_EQ(summary.errors.size(), reports.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(summary.errors[i].stage, reports[i].stage);
    EXPECT_EQ(summary.errors[i].error_us.count(),
              reports[i].error_us.count());
    EXPECT_EQ(summary.errors[i].error_us.sum(), reports[i].error_us.sum());
    EXPECT_EQ(summary.errors[i].error_us.min(), reports[i].error_us.min());
    EXPECT_EQ(summary.errors[i].error_us.max(), reports[i].error_us.max());
    EXPECT_EQ(summary.errors[i].error_us.bucket_counts(),
              reports[i].error_us.bucket_counts());
  }
}

// -------------------------------------------------------- exporter goldens

TraceData golden_trace() {
  TraceData data;
  data.components = {"stack", "nic"};
  const auto paced =
      span_packet(42, 7, 1, 1200, sim::Time::from_ns(1'230'000));
  data.events.push_back(obs::make_span(TraceStage::kPacerRelease, 0,
                                       sim::Time::from_ns(1'234'567),
                                       paced));
  data.events.push_back(obs::make_span(TraceStage::kNicTx, 1,
                                       sim::Time::from_ns(1'250'000),
                                       paced));
  data.events.push_back(obs::make_span(TraceStage::kWire, 1,
                                       sim::Time::from_ns(2'000'500),
                                       span_packet(43, 8, 2, 1100)));
  return data;
}

constexpr char kGoldenHeader[] =
    "{\"qlog_format\":\"JSON-SEQ\",\"qlog_version\":\"0.4\","
    "\"title\":\"golden\",\"generator\":\"quicsteps\","
    "\"trace\":{\"time_unit\":\"us\",\"components\":[\"stack\",\"nic\"]}}\n";
constexpr char kGoldenSpan1[] =
    "{\"time\":1234.567,\"name\":\"transport:pacer_release\","
    "\"data\":{\"component\":\"stack\",\"flow\":1,\"packet_number\":7,"
    "\"packet_id\":42,\"size\":1200,\"intended_us\":1230.000}}\n";
constexpr char kGoldenSpan2[] =
    "{\"time\":1250.000,\"name\":\"kernel:nic_tx\","
    "\"data\":{\"component\":\"nic\",\"flow\":1,\"packet_number\":7,"
    "\"packet_id\":42,\"size\":1200,\"intended_us\":1230.000}}\n";
constexpr char kGoldenSpan3[] =
    "{\"time\":2000.500,\"name\":\"wire:packet_departure\","
    "\"data\":{\"component\":\"nic\",\"flow\":2,\"packet_number\":8,"
    "\"packet_id\":43,\"size\":1100}}\n";

TEST(Exporters, PathQlogJsonlIsBytePinned) {
  std::ostringstream out;
  obs::write_path_qlog(out, golden_trace(), "golden");
  EXPECT_EQ(out.str(), std::string(kGoldenHeader) + kGoldenSpan1 +
                           kGoldenSpan2 + kGoldenSpan3);
}

TEST(Exporters, PathQlogFlowFilterKeepsHeaderDropsOtherFlows) {
  std::ostringstream out;
  obs::write_path_qlog(out, golden_trace(), "golden", 1);
  EXPECT_EQ(out.str(),
            std::string(kGoldenHeader) + kGoldenSpan1 + kGoldenSpan2);
}

TEST(Exporters, TraceCsvIsBytePinned) {
  std::ostringstream out;
  obs::write_trace_csv(out, golden_trace());
  EXPECT_EQ(out.str(),
            "flow,packet_number,packet_id,stage,component,time_us,"
            "intended_us,size_bytes\n"
            "1,7,42,transport:pacer_release,stack,1234.567,1230.000,1200\n"
            "1,7,42,kernel:nic_tx,nic,1250.000,1230.000,1200\n"
            "2,8,43,wire:packet_departure,nic,2000.500,,1100\n");
}

// ----------------------------------------------------- traced end-to-end

ExperimentConfig traced_config() {
  ExperimentConfig config;
  config.label = "traced";
  config.stack = StackKind::kQuicheSf;
  config.payload_bytes = 1ll * 1024 * 1024;
  config.repetitions = 1;
  config.seed = 1;
  config.trace = true;
  config.keep_capture = true;
  return config;
}

TEST(TraceEndToEnd, EveryPacedPacketChainsToDeliveryOrDrop) {
  if (!obs::kTraceEnabled) {
    GTEST_SKIP() << "built with -DQUICSTEPS_TRACE=OFF";
  }
  const auto run = Runner::run_once(traced_config(), 1);
  ASSERT_TRUE(run.completed);
  ASSERT_NE(run.trace, nullptr);
  const auto timelines = obs::build_timelines(*run.trace);

  std::int64_t paced = 0;
  std::int64_t dropped = 0;
  for (const auto& tl : timelines) {
    if (!tl.has_stage(TraceStage::kPacerRelease)) continue;  // ACK / ctrl
    ++paced;
    if (tl.dropped()) ++dropped;
    // The acceptance bar: a paced packet either reaches delivery with a
    // complete chain or its trace names the qdisc that dropped it.
    EXPECT_TRUE(tl.complete() || tl.dropped())
        << "flow " << tl.flow << " packet " << tl.packet_id
        << " vanished mid-path";
  }
  EXPECT_GT(paced, 0);
  EXPECT_EQ(obs::count_complete(timelines), paced - dropped);
  EXPECT_EQ(paced, run.pacer_releases);

  // The streaming digest agrees with the materialized derivation on a
  // real span stream too (GSO trains, retransmissions, ACK spans).
  const obs::TraceSummary summary = obs::summarize_trace(*run.trace);
  EXPECT_EQ(summary.complete_chains, obs::count_complete(timelines));
  const auto reports = obs::stage_errors(timelines);
  ASSERT_EQ(summary.errors.size(), reports.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(summary.errors[i].stage, reports[i].stage);
    EXPECT_EQ(summary.errors[i].error_us.count(),
              reports[i].error_us.count());
    EXPECT_EQ(summary.errors[i].error_us.sum(), reports[i].error_us.sum());
  }
}

TEST(TraceEndToEnd, WireSpansMatchTheCaptureAndPrecisionAnalyzer) {
  if (!obs::kTraceEnabled) {
    GTEST_SKIP() << "built with -DQUICSTEPS_TRACE=OFF";
  }
  const auto run = Runner::run_once(traced_config(), 1);
  ASSERT_NE(run.trace, nullptr);
  ASSERT_NE(run.capture, nullptr);
  const auto timelines = obs::build_timelines(*run.trace);
  std::map<std::pair<std::uint32_t, std::uint64_t>, const obs::PacketTimeline*>
      by_key;
  for (const auto& tl : timelines) by_key[{tl.flow, tl.packet_id}] = &tl;

  // Every captured wire packet has a kWire span at exactly its tap time.
  for (const net::Packet& pkt : *run.capture) {
    const auto it = by_key.find({pkt.flow, pkt.id});
    ASSERT_NE(it, by_key.end()) << "packet " << pkt.id << " untraced";
    EXPECT_EQ(it->second->stage_time(TraceStage::kWire), pkt.wire_time);
  }

  // The wire-stage pacing-error statistics agree with the same offsets
  // computed independently from the capture, the way the paper's precision
  // metric does (metrics::PrecisionAnalyzer). The reference below keeps
  // the analyzer's selection but skips packets without a pacer intent —
  // the trace layer reads expected_send_time == 0 as "none", while the
  // analyzer folds those initial-window packets in. Span errors truncate
  // to whole microseconds, hence the 1 us mean tolerance.
  const auto reports = obs::stage_errors(timelines);
  const obs::StageErrorReport* wire = nullptr;
  for (const auto& report : reports) {
    if (report.stage == TraceStage::kWire) wire = &report;
  }
  ASSERT_NE(wire, nullptr);
  double offset_sum_ms = 0.0;
  std::int64_t intents = 0;
  for (const net::Packet& pkt : *run.capture) {
    if (pkt.kind != net::PacketKind::kQuicData) continue;
    if (pkt.expected_send_time.ns() == 0) continue;
    offset_sum_ms += (pkt.wire_time - pkt.expected_send_time).to_millis();
    ++intents;
  }
  ASSERT_GT(intents, 0);
  EXPECT_EQ(wire->error_us.count(), intents);
  EXPECT_NEAR(wire->mean_us(),
              offset_sum_ms / static_cast<double>(intents) * 1000.0, 1.0);
  // And the analyzer itself sees exactly the extra no-intent packets.
  const auto precision = metrics::PrecisionAnalyzer().analyze(*run.capture);
  EXPECT_GE(precision.samples, static_cast<std::size_t>(intents));
}

TEST(TraceEndToEnd, RepeatedRunsExportIdenticalBytes) {
  if (!obs::kTraceEnabled) {
    GTEST_SKIP() << "built with -DQUICSTEPS_TRACE=OFF";
  }
  const auto a = Runner::run_once(traced_config(), 1);
  const auto b = Runner::run_once(traced_config(), 1);
  ASSERT_NE(a.trace, nullptr);
  ASSERT_NE(b.trace, nullptr);
  std::ostringstream qlog_a, qlog_b;
  framework::write_path_qlog(qlog_a, a, "traced");
  framework::write_path_qlog(qlog_b, b, "traced");
  EXPECT_GT(qlog_a.str().size(), 1000u);
  EXPECT_EQ(qlog_a.str(), qlog_b.str());
}

TEST(TraceEndToEnd, UntracedRunsCarryNoTraceAndExportHeadersOnly) {
  auto config = traced_config();
  config.trace = false;
  const auto run = Runner::run_once(config, 1);
  EXPECT_EQ(run.trace, nullptr);
  std::ostringstream qlog, csv;
  framework::write_path_qlog(qlog, run, "untraced");
  framework::write_path_trace_csv(csv, run);
  EXPECT_EQ(qlog.str().find("packet_departure"), std::string::npos);
  EXPECT_EQ(csv.str(),
            "flow,packet_number,packet_id,stage,component,time_us,"
            "intended_us,size_bytes\n");
}

}  // namespace
}  // namespace quicsteps
