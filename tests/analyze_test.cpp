// Self-tests for tools/analyze (quicsteps-analyze).
//
// The fixture trees under tools/analyze/testdata/ pin every rule family:
//   violations/  one deliberate violation per rule, line numbers fixed
//   layering/    seeded upward include + include cycle + unknown layer
//   clean/       a file the analyzer must pass with zero findings
// The SARIF reporter is golden-tested byte-for-byte against
// expected_violations.sarif so downstream consumers (CI annotations, SARIF
// viewers) can rely on the exact shape.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyze/analyzer.hpp"
#include "analyze/baseline.hpp"
#include "analyze/cache.hpp"
#include "analyze/callgraph.hpp"
#include "analyze/cfg.hpp"
#include "analyze/lexer.hpp"
#include "analyze/report.hpp"
#include "analyze/rule.hpp"
#include "analyze/symbols.hpp"

namespace {

using quicsteps::analyze::AnalysisResult;
using quicsteps::analyze::Baseline;
using quicsteps::analyze::Finding;
using quicsteps::analyze::LayerManifest;
using quicsteps::analyze::LexResult;
using quicsteps::analyze::Options;
using quicsteps::analyze::TokKind;

// Set by tests/CMakeLists.txt to <repo>/tools/analyze.
const std::string kAnalyzeDir = QS_ANALYZE_DIR;
const std::string kTestdata = kAnalyzeDir + "/testdata";
const std::string kLayersJson = kAnalyzeDir + "/layers.json";

std::string read_file_or_die(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// "file:line rule-id" per finding, in the analyzer's reporting order.
std::vector<std::string> finding_keys(const AnalysisResult& result) {
  std::vector<std::string> keys;
  for (const auto& f : result.findings) {
    keys.push_back(f.file + ":" + std::to_string(f.line) + " " + f.rule_id);
  }
  return keys;
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(AnalyzeLexer, CommentsProduceNoTokens) {
  LexResult r = quicsteps::analyze::lex(
      "// rand() in a line comment\n"
      "/* std::chrono in a block\n   comment */ int x;\n");
  ASSERT_EQ(r.tokens.size(), 3u);
  EXPECT_TRUE(r.tokens[0].is_id("int"));
  EXPECT_TRUE(r.tokens[1].is_id("x"));
  EXPECT_TRUE(r.tokens[2].is_punct(";"));
  // The block comment swallowed a newline: `int` sits on line 3.
  EXPECT_EQ(r.tokens[0].line, 3);
}

TEST(AnalyzeLexer, StringBodiesAreTypedNotIdentifiers) {
  LexResult r = quicsteps::analyze::lex("const char* s = \"rand() time()\";");
  int strings = 0;
  for (const auto& t : r.tokens) {
    EXPECT_FALSE(t.is_id("rand"));
    if (t.kind == TokKind::kString) ++strings;
  }
  EXPECT_EQ(strings, 1);
}

TEST(AnalyzeLexer, RawStringsAndDigitSeparators) {
  LexResult r = quicsteps::analyze::lex(
      "auto s = R\"(srand(1) \" quote)\";\n"
      "long long n = 1'000'000;\n");
  bool saw_raw = false, saw_number = false;
  for (const auto& t : r.tokens) {
    if (t.kind == TokKind::kString && t.text == "srand(1) \" quote") {
      saw_raw = true;
    }
    if (t.kind == TokKind::kNumber && t.text == "1'000'000") {
      saw_number = true;
    }
    EXPECT_FALSE(t.is_id("srand"));  // raw-string body must not leak out
  }
  EXPECT_TRUE(saw_raw);
  EXPECT_TRUE(saw_number);
}

TEST(AnalyzeLexer, IncludeExtractionAndPragmaOnce) {
  LexResult r = quicsteps::analyze::lex(
      "#pragma once\n"
      "#include <vector>\n"
      "#include \"sim/time.hpp\"\n");
  EXPECT_TRUE(r.has_pragma_once);
  ASSERT_EQ(r.includes.size(), 2u);
  EXPECT_EQ(r.includes[0].path, "vector");
  EXPECT_TRUE(r.includes[0].angle);
  EXPECT_EQ(r.includes[0].line, 2);
  EXPECT_EQ(r.includes[1].path, "sim/time.hpp");
  EXPECT_FALSE(r.includes[1].angle);
  EXPECT_EQ(r.includes[1].line, 3);
}

TEST(AnalyzeLexer, MultiCharPunctuatorsAreSingleTokens) {
  LexResult r = quicsteps::analyze::lex("a && b; std::x; p->q; c || d;");
  int amp_amp = 0, colon_colon = 0, arrow = 0, pipe_pipe = 0, bare_amp = 0;
  for (const auto& t : r.tokens) {
    if (t.is_punct("&&")) ++amp_amp;
    if (t.is_punct("::")) ++colon_colon;
    if (t.is_punct("->")) ++arrow;
    if (t.is_punct("||")) ++pipe_pipe;
    if (t.is_punct("&")) ++bare_amp;
  }
  EXPECT_EQ(amp_amp, 1);
  EXPECT_EQ(colon_colon, 1);
  EXPECT_EQ(arrow, 1);
  EXPECT_EQ(pipe_pipe, 1);
  EXPECT_EQ(bare_amp, 0);
}

TEST(AnalyzeLexer, BackslashNewlineSplicesKeepDirectiveState) {
  LexResult r = quicsteps::analyze::lex(
      "#include \\\n\"sim/time.hpp\"\n"
      "int after;\n");
  ASSERT_EQ(r.includes.size(), 1u);
  EXPECT_EQ(r.includes[0].path, "sim/time.hpp");
  // The identifier after the directive is NOT in_pp.
  for (const auto& t : r.tokens) {
    if (t.is_id("after")) {
      EXPECT_FALSE(t.in_pp);
    }
    if (t.is_id("include")) {
      EXPECT_TRUE(t.in_pp);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule registry
// ---------------------------------------------------------------------------

TEST(AnalyzeRules, RegistryListsAllTwentyThreeRules) {
  const auto& rules = quicsteps::analyze::all_rules();
  EXPECT_EQ(rules.size(), 23u);
  // The flow-sensitive v3 families ride on the CFG + abstract interpreter.
  EXPECT_TRUE(quicsteps::analyze::known_rule("lifetime/use-after-recycle"));
  EXPECT_TRUE(quicsteps::analyze::known_rule("lifetime/ref-escape"));
  EXPECT_TRUE(quicsteps::analyze::known_rule("units/interval-overflow"));
  EXPECT_TRUE(quicsteps::analyze::known_rule("units/div-by-zero-rate"));
  EXPECT_TRUE(quicsteps::analyze::known_rule("units/lossy-narrowing"));
  EXPECT_TRUE(quicsteps::analyze::known_rule("protocol/typestate"));
  EXPECT_EQ(quicsteps::analyze::rule_family("lifetime/ref-escape"),
            "lifetime");
  EXPECT_EQ(quicsteps::analyze::rule_family("protocol/typestate"), "protocol");
  EXPECT_EQ(quicsteps::analyze::rule_family("units/interval-overflow"),
            "units");
  EXPECT_TRUE(quicsteps::analyze::known_rule("determinism/wall-clock"));
  EXPECT_TRUE(
      quicsteps::analyze::known_rule("determinism/exporter-unordered"));
  EXPECT_TRUE(quicsteps::analyze::known_rule("determinism/unordered-taint"));
  EXPECT_TRUE(quicsteps::analyze::known_rule("layering/cycle"));
  EXPECT_TRUE(
      quicsteps::analyze::known_rule("perf/hot-path-alloc-interproc"));
  EXPECT_TRUE(
      quicsteps::analyze::known_rule("concurrency/parallel-shared-state"));
  // The syntactic v1 perf rule is gone; its id must fail baseline loads.
  EXPECT_FALSE(quicsteps::analyze::known_rule("perf/hot-path-alloc"));
  EXPECT_FALSE(quicsteps::analyze::known_rule("determinism/flux-capacitor"));
  EXPECT_EQ(quicsteps::analyze::rule_family("units/raw-rate-type"), "units");
  EXPECT_EQ(quicsteps::analyze::rule_family("perf/hot-path-alloc-interproc"),
            "perf");
  EXPECT_EQ(
      quicsteps::analyze::rule_family("concurrency/parallel-shared-state"),
      "concurrency");
}

// ---------------------------------------------------------------------------
// Violations fixture: every non-layering rule, exact file:line
// ---------------------------------------------------------------------------

// (assigned via a named string: GCC 12's inliner false-positives
// -Werror=restrict on short-literal assignment here)
const std::string kNoLayers = "-";

AnalysisResult run_violations() {
  Options opts;
  opts.root = kTestdata + "/violations";
  opts.paths = {opts.root};
  opts.include_base = opts.root;
  opts.layers_file = kNoLayers;  // fixture tree is not the real layer stack
  return quicsteps::analyze::run_analysis(opts);
}

TEST(AnalyzeViolationsFixture, FindsEachSeededViolationOnItsPinnedLine) {
  AnalysisResult result = run_violations();
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(result.files_scanned, 8u);
  const std::vector<std::string> expected = {
      "determinism_misc.cpp:7 determinism/random-device",
      "determinism_misc.cpp:12 determinism/unordered-container",
      "determinism_misc.cpp:17 determinism/thread-sleep",
      "determinism_misc.cpp:18 determinism/wall-clock",
      "determinism_rand.cpp:5 determinism/libc-rand",
      "determinism_rand.cpp:6 determinism/libc-rand",
      "determinism_rand.cpp:10 determinism/libc-rand",
      "determinism_wall.cpp:7 determinism/wall-clock",
      "determinism_wall.cpp:9 determinism/wall-clock",
      "determinism_wall.cpp:18 determinism/wall-clock",
      "exporter_unordered.cpp:7 determinism/exporter-unordered",
      "missing_guard.hpp:1 determinism/include-guard",
      "scheduling_capture.cpp:9 scheduling/ref-capture",
      "scheduling_capture.cpp:10 scheduling/ref-capture",
      "units_raw.cpp:5 units/raw-time-type",
      "units_raw.cpp:6 units/raw-rate-type",
      "units_raw.cpp:10 units/raw-time-type",
      "units_rewrap.cpp:7 units/unwrap-rewrap",
      "units_rewrap.cpp:11 units/unwrap-rewrap",
  };
  EXPECT_EQ(finding_keys(result), expected);
  EXPECT_EQ(result.active_count, expected.size());
  EXPECT_EQ(result.baselined_count, 0u);
}

TEST(AnalyzeViolationsFixture, RuleFamilyFilterNarrowsTheRun) {
  Options opts;
  opts.root = kTestdata + "/violations";
  opts.paths = {opts.root};
  opts.include_base = opts.root;
  opts.layers_file = "-";
  opts.rule_families = {"units"};
  AnalysisResult result = quicsteps::analyze::run_analysis(opts);
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(result.rules_run, 6u);  // the six units/* rules
  for (const auto& f : result.findings) {
    EXPECT_EQ(quicsteps::analyze::rule_family(f.rule_id), "units") << f.rule_id;
  }
  EXPECT_EQ(result.findings.size(), 5u);
}

// ---------------------------------------------------------------------------
// Clean fixture
// ---------------------------------------------------------------------------

TEST(AnalyzeCleanFixture, ReportsNothing) {
  Options opts;
  opts.root = kTestdata + "/clean";
  opts.paths = {opts.root};
  opts.include_base = opts.root;
  opts.layers_file = "-";
  AnalysisResult result = quicsteps::analyze::run_analysis(opts);
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(result.files_scanned, 1u);
  EXPECT_TRUE(result.findings.empty());
}

// ---------------------------------------------------------------------------
// Layering fixture: upward include, cycle, unknown layer — against the
// real checked-in layers.json
// ---------------------------------------------------------------------------

TEST(AnalyzeLayeringFixture, RejectsUpwardIncludeCycleAndUnknownLayer) {
  Options opts;
  opts.root = kTestdata + "/layering";
  opts.paths = {opts.root};
  opts.include_base = opts.root;
  opts.layers_file = kLayersJson;
  AnalysisResult result = quicsteps::analyze::run_analysis(opts);
  ASSERT_TRUE(result.error.empty()) << result.error;
  const std::vector<std::string> expected = {
      "mystery/thing.hpp:1 layering/unknown-layer",
      "quic/a.hpp:4 layering/cycle",
      "sim/clock.hpp:4 layering/upward-include",
  };
  EXPECT_EQ(finding_keys(result), expected);

  for (const auto& f : result.findings) {
    if (f.rule_id == "layering/cycle") {
      EXPECT_EQ(f.message, "include cycle: quic/a.hpp -> quic/b.hpp");
    }
    if (f.rule_id == "layering/upward-include") {
      EXPECT_NE(f.message.find("layer 'sim'"), std::string::npos) << f.message;
      EXPECT_NE(f.message.find("framework/report.hpp"), std::string::npos)
          << f.message;
    }
  }
}

TEST(AnalyzeLayering, RealManifestLoadsAndDeclaresTheStack) {
  LayerManifest manifest;
  std::string error;
  ASSERT_TRUE(quicsteps::analyze::load_layer_manifest(
      read_file_or_die(kLayersJson), &manifest, &error))
      << error;
  for (const char* layer : {"core", "check", "obs", "sim", "net", "kernel",
                            "cc", "pacing", "metrics", "quic", "stacks",
                            "tcp", "framework"}) {
    EXPECT_TRUE(manifest.declared(layer)) << layer;
  }
  EXPECT_TRUE(manifest.is_universal("core"));
  EXPECT_TRUE(manifest.is_universal("check"));
  EXPECT_TRUE(manifest.is_universal("obs"));
  EXPECT_FALSE(manifest.is_universal("sim"));
  // The batched-datapath files are tagged hot_path for perf/hot-path-alloc.
  EXPECT_TRUE(manifest.is_hot_path("sim/event_loop.cpp"));
  EXPECT_TRUE(manifest.is_hot_path("net/packet_slab.hpp"));
  EXPECT_TRUE(manifest.is_hot_path("kernel/nic.cpp"));
  EXPECT_FALSE(manifest.is_hot_path("framework/flows.cpp"));
}

// ---------------------------------------------------------------------------
// Perf fixture: hot-path allocation tagging
// ---------------------------------------------------------------------------

TEST(AnalyzePerf, FlagsHotCallablesAndTransitivelyReachableHelpers) {
  Options opts;
  opts.root = kTestdata + "/perf";
  opts.paths = {opts.root};
  opts.include_base = opts.root;
  opts.layers_file = kTestdata + "/perf/layers.json";
  opts.rule_families = {"perf"};
  AnalysisResult result = quicsteps::analyze::run_analysis(opts);
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(result.rules_run, 1u);
  EXPECT_EQ(result.files_scanned, 2u);
  // cold() repeats the same patterns untagged and must stay silent, but
  // alloc_helper() — called from hot() across the file boundary — is in
  // the transitive hot set and its allocation is flagged.
  const std::vector<std::string> expected = {
      "cold.cpp:13 perf/hot-path-alloc-interproc",  // via call graph
      "hot.cpp:6 perf/hot-path-alloc-interproc",    // new
      "hot.cpp:7 perf/hot-path-alloc-interproc",    // make_unique
      "hot.cpp:8 perf/hot-path-alloc-interproc",    // make_shared
      "hot.cpp:9 perf/hot-path-alloc-interproc",    // push_back
      "hot.cpp:10 perf/hot-path-alloc-interproc",   // emplace_back
      "hot.cpp:11 perf/hot-path-alloc-interproc",   // schedule_at
      "hot.cpp:12 perf/hot-path-alloc-interproc",   // schedule_after
  };
  EXPECT_EQ(finding_keys(result), expected);
  for (const auto& f : result.findings) {
    if (f.file == "cold.cpp") {
      EXPECT_NE(f.message.find("reachable from the hot-path set"),
                std::string::npos)
          << f.message;
    }
  }
}

// ---------------------------------------------------------------------------
// Concurrency fixture: unsynchronized shared writes from parallel workers
// ---------------------------------------------------------------------------

TEST(AnalyzeConcurrency, FlagsUnsyncedSharedWritesFromWorkers) {
  Options opts;
  opts.root = kTestdata + "/concurrency";
  opts.paths = {opts.root};
  opts.include_base = opts.root;
  opts.layers_file = kTestdata + "/concurrency/layers.json";
  opts.rule_families = {"concurrency"};
  AnalysisResult result = quicsteps::analyze::run_analysis(opts);
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(result.rules_run, 1u);
  // Three races: the global mutated in a helper one call away, and the
  // spawning frame's local written from two worker thunks. The atomic,
  // lock_guard-protected, and lambda-local writes must all stay silent.
  const std::vector<std::string> expected = {
      "race.cpp:8 concurrency/parallel-shared-state",
      "race.cpp:13 concurrency/parallel-shared-state",
      "race.cpp:16 concurrency/parallel-shared-state",
  };
  EXPECT_EQ(finding_keys(result), expected);
  for (const auto& f : result.findings) {
    if (f.line == 8) {
      EXPECT_NE(f.message.find("non-const global 'shared_hits'"),
                std::string::npos)
          << f.message;
      EXPECT_NE(f.message.find("reaches 'bump_shared'"), std::string::npos)
          << f.message;
    }
    if (f.line == 13 || f.line == 16) {
      EXPECT_NE(f.message.find("by-ref capture 'total'"), std::string::npos)
          << f.message;
      EXPECT_NE(f.message.find("declared at line 11"), std::string::npos)
          << f.message;
    }
  }
}

// ---------------------------------------------------------------------------
// Taint fixture: unordered iteration order flowing to sinks
// ---------------------------------------------------------------------------

TEST(AnalyzeTaint, FollowsUnorderedOrderToSinksAndHonorsLaundering) {
  Options opts;
  opts.root = kTestdata + "/taint";
  opts.paths = {opts.root};
  opts.include_base = opts.root;
  opts.layers_file = kNoLayers;
  opts.rule_families = {"determinism"};
  AnalysisResult result = quicsteps::analyze::run_analysis(opts);
  ASSERT_TRUE(result.error.empty()) << result.error;
  std::vector<std::string> taint_keys;
  for (const auto& f : result.findings) {
    if (f.rule_id == "determinism/unordered-taint") {
      taint_keys.push_back(f.file + ":" + std::to_string(f.line));
    }
  }
  // 15: range-for binding over the unordered map reaches write_row;
  // 17: the container itself reaches dump_counts;
  // 23: the binding is streamed with operator<<.
  // The std::map copy in launder_through_map stays silent (line 31).
  const std::vector<std::string> expected = {
      "taint.cpp:15", "taint.cpp:17", "taint.cpp:23"};
  EXPECT_EQ(taint_keys, expected);
  for (const auto& f : result.findings) {
    if (f.rule_id != "determinism/unordered-taint" || f.line != 17) continue;
    // Machine fix at the SOURCE declaration, not the sink: swap
    // unordered_map for map on line 12.
    ASSERT_EQ(f.fixits.size(), 1u);
    EXPECT_EQ(f.fixits[0].line, 12);
    EXPECT_EQ(f.fixits[0].replacement, "map");
  }
}

// ---------------------------------------------------------------------------
// Symbol index and call graph goldens
// ---------------------------------------------------------------------------

quicsteps::analyze::Model build_fixture_model(const std::string& dir) {
  quicsteps::analyze::Model model;
  std::string error;
  EXPECT_TRUE(
      quicsteps::analyze::build_model({dir}, dir, dir, &model, &error))
      << error;
  return model;
}

const quicsteps::analyze::Symbol* find_symbol(
    const quicsteps::analyze::SymbolIndex& index, const std::string& name) {
  for (const auto& sym : index.symbols) {
    if (sym.name == name) return &sym;
  }
  return nullptr;
}

TEST(AnalyzeSymbols, IndexClassifiesTheSemanticsFixture) {
  using quicsteps::analyze::Symbol;
  const auto model = build_fixture_model(kTestdata + "/semantics");
  const auto index = quicsteps::analyze::build_symbol_index(model);

  const Symbol* global = find_symbol(index, "global_counter");
  ASSERT_NE(global, nullptr);
  EXPECT_EQ(global->kind, Symbol::Kind::kGlobal);
  EXPECT_FALSE(global->is_const);

  const Symbol* limit = find_symbol(index, "kLimit");
  ASSERT_NE(limit, nullptr);
  EXPECT_TRUE(limit->is_const);

  const Symbol* atomic_hits = find_symbol(index, "atomic_hits");
  ASSERT_NE(atomic_hits, nullptr);
  EXPECT_TRUE(atomic_hits->is_atomic);

  const Symbol* gate = find_symbol(index, "gate");
  ASSERT_NE(gate, nullptr);
  EXPECT_TRUE(gate->is_mutex);

  const Symbol* size = find_symbol(index, "size");
  ASSERT_NE(size, nullptr);
  EXPECT_EQ(size->kind, Symbol::Kind::kFunction);
  EXPECT_NE(size->qual_name.find("Widget::size"), std::string::npos)
      << size->qual_name;

  const Symbol* field = find_symbol(index, "n_");
  ASSERT_NE(field, nullptr);
  EXPECT_EQ(field->kind, Symbol::Kind::kField);

  const Symbol* entry = find_symbol(index, "entry");
  ASSERT_NE(entry, nullptr);
  ASSERT_NE(entry->body_begin, Symbol::npos);

  const Symbol* calls = find_symbol(index, "calls");
  ASSERT_NE(calls, nullptr);
  EXPECT_EQ(calls->kind, Symbol::Kind::kStaticLocal);
  EXPECT_EQ(&index.symbols[calls->parent], entry);

  const Symbol* lambda = find_symbol(index, "<lambda>");
  ASSERT_NE(lambda, nullptr);
  EXPECT_EQ(lambda->bound_name, "bump");
  EXPECT_EQ(&index.symbols[lambda->parent], entry);

  // A token inside entry's body resolves to entry.
  const std::size_t inside =
      index.enclosing_callable(entry->file, entry->body_begin + 1);
  EXPECT_EQ(&index.symbols[inside], entry);
}

TEST(AnalyzeSymbols, CallGraphResolvesCallsIncludingBoundLambdas) {
  const auto model = build_fixture_model(kTestdata + "/semantics");
  const auto index = quicsteps::analyze::build_symbol_index(model);
  const auto graph =
      quicsteps::analyze::build_call_graph(model, index, nullptr);

  const auto id_of = [&](const std::string& name) {
    for (std::size_t i = 0; i < index.symbols.size(); ++i) {
      if (index.symbols[i].name == name) return i;
    }
    return quicsteps::analyze::Symbol::npos;
  };
  const std::size_t entry = id_of("entry");
  const std::size_t helper = id_of("helper");
  const std::size_t lambda = id_of("<lambda>");
  ASSERT_NE(entry, quicsteps::analyze::Symbol::npos);

  const auto has_edge = [&](std::size_t from, std::size_t to) {
    const auto& e = graph.edges[from];
    return std::find(e.begin(), e.end(), to) != e.end();
  };
  // entry -> helper (direct call), entry -> lambda (containment plus the
  // bump(x) bound-name call), lambda -> helper (call inside the body).
  EXPECT_TRUE(has_edge(entry, helper));
  EXPECT_TRUE(has_edge(entry, lambda));
  EXPECT_TRUE(has_edge(lambda, helper));
}

TEST(AnalyzeSymbols, HotTagsPropagateTransitivelyOverTheGraph) {
  const auto model = build_fixture_model(kTestdata + "/perf");
  const auto index = quicsteps::analyze::build_symbol_index(model);
  LayerManifest manifest;
  std::string error;
  ASSERT_TRUE(quicsteps::analyze::load_layer_manifest(
      read_file_or_die(kTestdata + "/perf/layers.json"), &manifest, &error))
      << error;
  const auto graph =
      quicsteps::analyze::build_call_graph(model, index, &manifest);

  for (std::size_t i = 0; i < index.symbols.size(); ++i) {
    const auto& sym = index.symbols[i];
    if (!sym.is_callable()) continue;
    if (sym.name == "hot" || sym.name == "alloc_helper") {
      // hot() is seeded by the manifest; alloc_helper (defined in the
      // cold file) is reachable from it, so the tag propagates.
      EXPECT_TRUE(graph.is_hot(i)) << sym.qual_name;
    }
    if (sym.name == "cold") {
      EXPECT_FALSE(graph.is_hot(i)) << sym.qual_name;
    }
  }
}

// ---------------------------------------------------------------------------
// CFG builder: blocks, short-circuit splitting, loop heads
// ---------------------------------------------------------------------------

TEST(AnalyzeCfg, BranchyFixtureLowersToCondBlocksAndLoopHead) {
  using quicsteps::analyze::Cfg;
  const auto model = build_fixture_model(kTestdata + "/cfg");
  const auto index = quicsteps::analyze::build_symbol_index(model);
  const auto cfgs = quicsteps::analyze::build_cfg_index(model, index);

  const Cfg* cfg = nullptr;
  for (const auto& c : cfgs.cfgs) {
    if (index.symbols[c.symbol].name == "classify") cfg = &c;
  }
  ASSERT_NE(cfg, nullptr);

  // Entry and exit are empty plain blocks; the exit has no successors.
  EXPECT_TRUE(cfg->blocks[Cfg::kEntry].stmts.empty());
  EXPECT_TRUE(cfg->blocks[Cfg::kExit].succs.empty());

  // `if (x > 0 && x < 10)` splits at the top-level && into TWO atomic
  // condition blocks; the for loop contributes a third. Every condition
  // block carries exactly one expression and exactly two successors.
  std::size_t conds = 0, loop_heads = 0;
  for (const auto& b : cfg->blocks) {
    if (b.is_cond) {
      ++conds;
      EXPECT_EQ(b.stmts.size(), 1u);
      EXPECT_EQ(b.succs.size(), 2u);
    }
    if (b.is_loop_head) ++loop_heads;
  }
  EXPECT_EQ(conds, 3u);
  EXPECT_EQ(loop_heads, 1u);

  // The RPO seed starts at the entry and never repeats a block.
  ASSERT_FALSE(cfg->rpo.empty());
  EXPECT_EQ(cfg->rpo.front(), Cfg::kEntry);
  std::vector<std::size_t> sorted = cfg->rpo;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

// ---------------------------------------------------------------------------
// Interval fixture: overflow / div-by-zero / narrowing, and the guarded
// negatives the path-sensitivity exists for
// ---------------------------------------------------------------------------

AnalysisResult run_intervals_fixture() {
  Options opts;
  opts.root = kTestdata + "/intervals";
  opts.paths = {opts.root};
  opts.include_base = opts.root;
  opts.layers_file = kNoLayers;
  opts.rule_families = {"units"};
  return quicsteps::analyze::run_analysis(opts);
}

TEST(AnalyzeIntervals, FlagsOverflowDivByZeroAndNarrowingOnPinnedLines) {
  AnalysisResult result = run_intervals_fixture();
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(result.files_scanned, 2u);
  const std::vector<std::string> expected = {
      "overflow.cpp:11 units/interval-overflow",  // factory scale
      "overflow.cpp:18 units/interval-overflow",  // raw + on unwrapped ns
      "overflow.cpp:23 units/interval-overflow",  // raw * before saturation
      "overflow.cpp:29 units/div-by-zero-rate",   // divisor interval has 0
      "overflow.cpp:34 units/lossy-narrowing",    // int64 ns into int
  };
  EXPECT_EQ(finding_keys(result), expected);
}

TEST(AnalyzeIntervals, NarrowingFindingCarriesAWideningFixit) {
  AnalysisResult result = run_intervals_fixture();
  ASSERT_TRUE(result.error.empty()) << result.error;
  for (const auto& f : result.findings) {
    if (f.rule_id != "units/lossy-narrowing") continue;
    ASSERT_EQ(f.fixits.size(), 1u);
    EXPECT_EQ(f.fixits[0].line, 34);
    EXPECT_EQ(f.fixits[0].replacement, "std::int64_t");
  }
}

TEST(AnalyzeIntervals, GuardedAndSaturatingPatternsStaySilent) {
  // guarded.cpp re-states every overflow.cpp shape behind a guard the
  // interval domain must refine on: `rate.bps() > 0`, `!rate.is_zero()`,
  // a saturating_add_ns sum, a __int128 growth test, a plain loop
  // counter (the widen-to-top regression), and a bounded factory arg.
  AnalysisResult result = run_intervals_fixture();
  ASSERT_TRUE(result.error.empty()) << result.error;
  for (const auto& f : result.findings) {
    EXPECT_NE(f.file, "guarded.cpp") << f.message;
  }
}

// ---------------------------------------------------------------------------
// Lifetime fixture: slab borrows dying across recycle paths
// ---------------------------------------------------------------------------

AnalysisResult run_lifetime_fixture() {
  Options opts;
  opts.root = kTestdata + "/lifetime";
  opts.paths = {opts.root};
  opts.include_base = opts.root;
  opts.layers_file = kTestdata + "/lifetime/layers.json";
  opts.rule_families = {"lifetime"};
  return quicsteps::analyze::run_analysis(opts);
}

TEST(AnalyzeLifetime, FlagsUseAfterRecycleAcrossPathsAndCalls) {
  AnalysisResult result = run_lifetime_fixture();
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(result.files_scanned, 2u);
  const std::vector<std::string> expected = {
      "use_after.cpp:29 lifetime/use-after-recycle",  // straight-line put
      "use_after.cpp:35 lifetime/use-after-recycle",  // via recycle_helper
      "use_after.cpp:43 lifetime/use-after-recycle",  // one branch only
      "use_after.cpp:48 lifetime/ref-escape",         // deferred callback
  };
  EXPECT_EQ(finding_keys(result), expected);
  // The interprocedural finding names the container handed to the helper.
  for (const auto& f : result.findings) {
    if (f.line == 35) {
      EXPECT_NE(f.message.find("'s2'"), std::string::npos) << f.message;
    }
  }
}

TEST(AnalyzeLifetime, LiveCopiedAndReborrowedHandlesStaySilent) {
  AnalysisResult result = run_lifetime_fixture();
  ASSERT_TRUE(result.error.empty()) << result.error;
  for (const auto& f : result.findings) {
    EXPECT_NE(f.file, "clean.cpp") << f.message;
  }
}

// ---------------------------------------------------------------------------
// Typestate fixture: the three declared protocols, may/must polarity
// ---------------------------------------------------------------------------

AnalysisResult run_typestate_fixture() {
  Options opts;
  opts.root = kTestdata + "/typestate";
  opts.paths = {opts.root};
  opts.include_base = opts.root;
  opts.layers_file = kTestdata + "/typestate/layers.json";
  opts.rule_families = {"protocol"};
  return quicsteps::analyze::run_analysis(opts);
}

TEST(AnalyzeTypestate, FlagsOneViolationPerProtocolOnPinnedLines) {
  AnalysisResult result = run_typestate_fixture();
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(result.files_scanned, 2u);
  const std::vector<std::string> expected = {
      "misuse.cpp:11 protocol/typestate",  // run() on an unscheduled loop
      "misuse.cpp:15 protocol/typestate",  // publish through unchecked ptr
      "misuse.cpp:20 protocol/typestate",  // mutate after run_flows froze it
  };
  EXPECT_EQ(finding_keys(result), expected);
  for (const auto& f : result.findings) {
    if (f.line == 11) {
      EXPECT_NE(f.message.find("eventloop-schedule-then-run"),
                std::string::npos)
          << f.message;
    }
    if (f.line == 15) {
      EXPECT_NE(f.message.find("tracebus-checked-publish"), std::string::npos)
          << f.message;
    }
    if (f.line == 20) {
      EXPECT_NE(f.message.find("flowconfig-frozen-after-run"),
                std::string::npos)
          << f.message;
    }
  }
}

TEST(AnalyzeTypestate, GuardedEscapedAndJoinedUsesStaySilent) {
  // clean.cpp exercises the joins the polarity model exists for: a sweep
  // loop whose back edge merges {building, frozen} (must-silent), an
  // escape into a component that may schedule, and both null-guard
  // shapes (`if (bus)` dominates, `if (!bus) return` early-outs).
  AnalysisResult result = run_typestate_fixture();
  ASSERT_TRUE(result.error.empty()) << result.error;
  for (const auto& f : result.findings) {
    EXPECT_NE(f.file, "clean.cpp") << f.message;
  }
}

// ---------------------------------------------------------------------------
// Caches: token replay and whole-analysis result replay
// ---------------------------------------------------------------------------

TEST(AnalyzeCache, WarmRunReplaysTokensAndFindingsBitForBit) {
  const std::string dir = ::testing::TempDir() + "/qs-analyze-cache";
  std::filesystem::remove_all(dir);

  Options opts;
  opts.root = kTestdata + "/violations";
  opts.paths = {opts.root};
  opts.include_base = opts.root;
  opts.layers_file = kNoLayers;
  opts.cache_dir = dir;

  AnalysisResult cold = quicsteps::analyze::run_analysis(opts);
  ASSERT_TRUE(cold.error.empty()) << cold.error;
  EXPECT_FALSE(cold.findings_from_cache);
  EXPECT_EQ(cold.files_from_cache, 0u);

  AnalysisResult warm = quicsteps::analyze::run_analysis(opts);
  ASSERT_TRUE(warm.error.empty()) << warm.error;
  EXPECT_TRUE(warm.findings_from_cache);
  EXPECT_EQ(warm.files_from_cache, warm.files_scanned);

  // Replayed findings are byte-identical through both reporters — the
  // fix-its survive the round trip.
  EXPECT_EQ(quicsteps::analyze::text_report(cold.findings),
            quicsteps::analyze::text_report(warm.findings));
  EXPECT_EQ(quicsteps::analyze::sarif_report(cold.findings),
            quicsteps::analyze::sarif_report(warm.findings));

  // Narrowing the rule selection changes the key: no stale replay.
  Options narrowed = opts;
  narrowed.rule_families = {"units"};
  AnalysisResult units = quicsteps::analyze::run_analysis(narrowed);
  ASSERT_TRUE(units.error.empty()) << units.error;
  EXPECT_FALSE(units.findings_from_cache);
  EXPECT_EQ(units.findings.size(), 5u);

  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// --fix-baseline: stale entries are dropped in place
// ---------------------------------------------------------------------------

TEST(AnalyzeBaseline, FixBaselineRewritesStaleEntriesInPlace) {
  const std::string path =
      ::testing::TempDir() + "/qs-fix-baseline-test.txt";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "# live entry (units_raw.cpp really has this finding)\n"
        << "units_raw.cpp:units/raw-time-type\n"
        << "# stale entry: nothing in the fixture matches it\n"
        << "never.cpp:determinism/wall-clock\n";
  }

  Options opts;
  opts.root = kTestdata + "/violations";
  opts.paths = {opts.root};
  opts.include_base = opts.root;
  opts.layers_file = kNoLayers;
  opts.baseline_files = {path};
  opts.fix_baseline = true;
  AnalysisResult result = quicsteps::analyze::run_analysis(opts);
  ASSERT_TRUE(result.error.empty()) << result.error;
  ASSERT_EQ(result.rewritten_baselines.size(), 1u);
  EXPECT_EQ(result.rewritten_baselines[0], path);

  const std::string fixed = read_file_or_die(path);
  EXPECT_NE(fixed.find("units_raw.cpp:units/raw-time-type"),
            std::string::npos);
  EXPECT_EQ(fixed.find("never.cpp"), std::string::npos) << fixed;
  // Comments survive the rewrite.
  EXPECT_NE(fixed.find("# live entry"), std::string::npos);

  std::filesystem::remove(path);
}

TEST(AnalyzeLayering, CyclicDeclaredGraphIsAConfigError) {
  LayerManifest manifest;
  std::string error;
  const std::string cyclic =
      "{ \"layers\": { \"a\": [\"b\"], \"b\": [\"a\"] } }";
  EXPECT_FALSE(
      quicsteps::analyze::load_layer_manifest(cyclic, &manifest, &error));
  EXPECT_NE(error.find("cycle"), std::string::npos) << error;
}

TEST(AnalyzeLayering, UndeclaredDepIsAConfigError) {
  LayerManifest manifest;
  std::string error;
  const std::string bad = "{ \"layers\": { \"a\": [\"ghost\"] } }";
  EXPECT_FALSE(
      quicsteps::analyze::load_layer_manifest(bad, &manifest, &error));
  EXPECT_NE(error.find("ghost"), std::string::npos) << error;
}

TEST(AnalyzeLayering, MissingManifestFileIsAConfigErrorNotClean) {
  Options opts;
  opts.root = kTestdata + "/clean";
  opts.paths = {opts.root};
  opts.include_base = opts.root;
  opts.layers_file = kTestdata + "/no-such-layers.json";
  AnalysisResult result = quicsteps::analyze::run_analysis(opts);
  EXPECT_FALSE(result.error.empty());
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

TEST(AnalyzeBaseline, WaivesMatchingFindingsAndReportsStaleEntries) {
  Baseline baseline;
  std::string error;
  ASSERT_TRUE(baseline.load(
      "# comment\n"
      "src/sim/foo.cpp:units/raw-time-type\n"
      "src/never/matched.cpp:determinism/wall-clock\n",
      "test-baseline", &error))
      << error;
  EXPECT_EQ(baseline.size(), 2u);

  Finding hit{"units/raw-time-type", "src/sim/foo.cpp", 10, 3, "m", false, {}};
  Finding miss{"units/raw-rate-type", "src/sim/foo.cpp", 11, 3, "m", false,
               {}};
  EXPECT_TRUE(baseline.matches(hit));
  EXPECT_FALSE(baseline.matches(miss));

  std::vector<std::string> stale = baseline.unused();
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_NE(stale[0].find("src/never/matched.cpp"), std::string::npos);
}

TEST(AnalyzeBaseline, UnknownRuleIdFailsLoud) {
  Baseline baseline;
  std::string error;
  EXPECT_FALSE(baseline.load("src/a.cpp:units/imaginary-rule\n",
                             "test-baseline", &error));
  EXPECT_NE(error.find("imaginary-rule"), std::string::npos) << error;
}

TEST(AnalyzeBaseline, CheckedInBaselineStillMatchesTheTree) {
  // The real baseline against the real src/: loading must succeed, every
  // entry must still be in use, and src/ must be clean. This is the same
  // gate `ctest -R analyze` runs through the CLI.
  Options opts;
  opts.root = kAnalyzeDir + "/../..";
  AnalysisResult result = quicsteps::analyze::run_analysis(opts);
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(result.active_count, 0u) << quicsteps::analyze::text_report(
      result.findings);
  EXPECT_TRUE(result.unused_baseline_entries.empty());
}

// ---------------------------------------------------------------------------
// Reporters
// ---------------------------------------------------------------------------

TEST(AnalyzeReport, TextReportPinsTheGccStyleFormat) {
  std::vector<Finding> findings = {
      {"units/raw-time-type", "src/sim/time.cpp", 12, 9, "raw int64_t", false,
       {}},
      {"determinism/wall-clock", "src/a.cpp", 3, 1, "wall clock", true, {}},
  };
  EXPECT_EQ(quicsteps::analyze::text_report(findings),
            "src/sim/time.cpp:12:9: [units/raw-time-type] raw int64_t\n");
}

TEST(AnalyzeReport, TextReportEmitsMachineReadableFixits) {
  quicsteps::analyze::FixIt fix;
  fix.description = "replace unordered_map with map";
  fix.line = 12;
  fix.col = 14;
  fix.end_line = 12;
  fix.end_col = 27;
  fix.replacement = "map";
  std::vector<Finding> findings = {
      {"determinism/unordered-container", "src/a.cpp", 12, 9, "unordered",
       false, {fix}},
  };
  EXPECT_EQ(quicsteps::analyze::text_report(findings),
            "src/a.cpp:12:9: [determinism/unordered-container] unordered\n"
            "src/a.cpp:12:14: fix: replace [12:14-12:27] with 'map' "
            "(replace unordered_map with map)\n");
}

TEST(AnalyzeReport, SummaryLinePinsTheFormat) {
  EXPECT_EQ(quicsteps::analyze::summary_line(127, 40, 13, 9, 9, 14),
            "quicsteps-analyze: 127 files (40 cached), 13 rules, 9 finding(s) "
            "(9 baselined) in 14 ms");
}

TEST(AnalyzeReport, SarifGoldenOverIntervalsFixture) {
  // The flow-sensitive findings (intervals + the narrowing fix-it) are
  // golden-tested byte-for-byte, same as the v1 violations tree.
  AnalysisResult result = run_intervals_fixture();
  ASSERT_TRUE(result.error.empty()) << result.error;
  const std::string golden =
      read_file_or_die(kTestdata + "/expected_intervals.sarif");
  EXPECT_EQ(quicsteps::analyze::sarif_report(result.findings), golden)
      << "regenerate with: quicsteps-analyze --root " << kTestdata
      << "/intervals --include-base " << kTestdata << "/intervals"
      << " --layers - --rules units --sarif " << kTestdata
      << "/expected_intervals.sarif " << kTestdata << "/intervals";
}

TEST(AnalyzeReport, SarifGoldenOverViolationsFixture) {
  AnalysisResult result = run_violations();
  ASSERT_TRUE(result.error.empty()) << result.error;
  const std::string golden =
      read_file_or_die(kTestdata + "/expected_violations.sarif");
  EXPECT_EQ(quicsteps::analyze::sarif_report(result.findings), golden)
      << "regenerate with: quicsteps-analyze --root " << kTestdata
      << "/violations --include-base . --layers - --sarif "
      << kTestdata << "/expected_violations.sarif " << kTestdata
      << "/violations";
}

}  // namespace
