// Unit + integration tests for the QUIC transport: interval sets, RTT
// estimation, the ACK manager's delayed-ACK policy, loss detection
// thresholds, connection send/ack/retransmit flow, and an end-to-end
// transfer over a lossy bottleneck using the reference server.
#include <gtest/gtest.h>

#include "net/link.hpp"
#include "quic/ack_manager.hpp"
#include "quic/client.hpp"
#include "quic/connection.hpp"
#include "quic/frames.hpp"
#include "quic/loss_detection.hpp"
#include "quic/rtt_estimator.hpp"
#include "quic/server.hpp"

namespace quicsteps::quic {
namespace {

using namespace quicsteps::sim::literals;
using net::AckBlock;
using net::DataRate;
using net::Packet;
using net::TransportAck;
using sim::Duration;
using sim::EventLoop;
using sim::Time;

// ------------------------------------------------------------ interval sets

TEST(PacketNumberSet, MergesAdjacentAndDetectsDuplicates) {
  PacketNumberSet set;
  EXPECT_TRUE(set.insert(1));
  EXPECT_TRUE(set.insert(3));
  EXPECT_EQ(set.interval_count(), 2u);
  EXPECT_TRUE(set.insert(2));  // bridges 1..3
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_FALSE(set.insert(2));  // duplicate
  EXPECT_TRUE(set.contains(3));
  EXPECT_FALSE(set.contains(4));
  EXPECT_EQ(set.largest(), 3u);
}

TEST(PacketNumberSet, AckBlocksNewestFirst) {
  PacketNumberSet set;
  for (std::uint64_t pn : {1, 2, 3, 7, 8, 10}) set.insert(pn);
  auto blocks = set.to_ack_blocks(8);
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0].first, 10u);
  EXPECT_EQ(blocks[0].last, 10u);
  EXPECT_EQ(blocks[1].first, 7u);
  EXPECT_EQ(blocks[1].last, 8u);
  EXPECT_EQ(blocks[2].first, 1u);
  EXPECT_EQ(blocks[2].last, 3u);
}

TEST(PacketNumberSet, BlockLimitKeepsNewest) {
  PacketNumberSet set;
  for (std::uint64_t pn = 0; pn < 20; pn += 2) set.insert(pn);
  auto blocks = set.to_ack_blocks(3);
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0].last, 18u);
}

TEST(ByteIntervalSet, CountsNewBytesOnly) {
  ByteIntervalSet set;
  EXPECT_EQ(set.add(0, 100), 100);
  EXPECT_EQ(set.add(50, 100), 50);   // half overlap
  EXPECT_EQ(set.add(0, 150), 0);     // fully covered
  EXPECT_EQ(set.covered_bytes(), 150);
  EXPECT_EQ(set.contiguous_prefix(), 150);
}

TEST(ByteIntervalSet, GapBlocksPrefix) {
  ByteIntervalSet set;
  set.add(0, 100);
  set.add(200, 100);
  EXPECT_EQ(set.covered_bytes(), 200);
  EXPECT_EQ(set.contiguous_prefix(), 100);
  set.add(100, 100);  // fill the gap
  EXPECT_EQ(set.contiguous_prefix(), 300);
  EXPECT_EQ(set.interval_count(), 1u);
}

// -------------------------------------------------------------------- RTT

TEST(RttEstimator, FirstSampleInitializes) {
  RttEstimator rtt;
  rtt.update(40_ms, Duration::zero(), 25_ms);
  EXPECT_EQ(rtt.smoothed(), 40_ms);
  EXPECT_EQ(rtt.rttvar(), 20_ms);
  EXPECT_EQ(rtt.min(), 40_ms);
}

TEST(RttEstimator, EwmaConverges) {
  RttEstimator rtt;
  rtt.update(40_ms, Duration::zero(), 25_ms);
  for (int i = 0; i < 100; ++i) rtt.update(50_ms, Duration::zero(), 25_ms);
  EXPECT_NEAR(rtt.smoothed().to_millis(), 50.0, 1.0);
  EXPECT_EQ(rtt.min(), 40_ms);
}

TEST(RttEstimator, AckDelaySubtractedOnlyAboveMin) {
  RttEstimator rtt;
  rtt.update(40_ms, Duration::zero(), 25_ms);
  // 45 ms sample with 10 ms ack delay -> adjusted 35 ms would dip below
  // min (40 ms), so the raw sample must be used.
  rtt.update(45_ms, 10_ms, 25_ms);
  EXPECT_GT(rtt.smoothed(), 39_ms);
  // 60 ms sample with 10 ms delay -> adjusted 50 ms, still >= min.
  RttEstimator rtt2;
  rtt2.update(40_ms, Duration::zero(), 25_ms);
  rtt2.update(60_ms, 10_ms, 25_ms);
  EXPECT_LT(rtt2.smoothed(), 43_ms);  // (40*7 + 50)/8 = 41.25
}

TEST(RttEstimator, PtoIntervalFormula) {
  RttEstimator rtt;
  rtt.update(40_ms, Duration::zero(), 25_ms);
  // srtt + max(4*rttvar, 1ms) + max_ack_delay = 40 + 80 + 25.
  EXPECT_EQ(rtt.pto_interval(25_ms), 145_ms);
}

// ------------------------------------------------------------- AckManager

TEST(AckManager, AcksEverySecondElicitingPacket) {
  AckManager mgr;
  EXPECT_TRUE(mgr.on_packet_received(1, true, Time::zero() + 1_ms));
  EXPECT_FALSE(mgr.ack_due_now());
  EXPECT_TRUE(mgr.on_packet_received(2, true, Time::zero() + 2_ms));
  EXPECT_TRUE(mgr.ack_due_now());
}

TEST(AckManager, DelayedAckDeadline) {
  AckManager mgr;
  mgr.on_packet_received(1, true, Time::zero() + 1_ms);
  EXPECT_EQ(mgr.ack_deadline(), Time::zero() + 26_ms);  // +25 ms max delay
}

TEST(AckManager, BuildAckClearsPendingAndReportsDelay) {
  AckManager mgr;
  mgr.on_packet_received(1, true, Time::zero() + 1_ms);
  mgr.on_packet_received(2, true, Time::zero() + 2_ms);
  auto ack = mgr.build_ack(Time::zero() + 5_ms);
  EXPECT_EQ(ack->largest(), 2u);
  EXPECT_EQ(ack->ack_delay, 3_ms);
  EXPECT_FALSE(mgr.has_pending());
}

TEST(AckManager, DuplicateDoesNotRetrigger) {
  AckManager mgr;
  mgr.on_packet_received(1, true, Time::zero() + 1_ms);
  EXPECT_FALSE(mgr.on_packet_received(1, true, Time::zero() + 2_ms));
  EXPECT_FALSE(mgr.ack_due_now());
}

// ---------------------------------------------------------- LossDetection

SentPacket sent_pkt(std::uint64_t pn, Time at) {
  SentPacket p;
  p.pn = pn;
  p.bytes = kDatagramSize;
  p.time_sent = at;
  p.stream_offset = static_cast<std::int64_t>(pn) * kPayloadPerDatagram;
  p.stream_length = kPayloadPerDatagram;
  return p;
}

TEST(LossDetectionTest, PacketThresholdDeclaresLoss) {
  SentPacketMap map;
  for (std::uint64_t pn = 1; pn <= 5; ++pn) {
    map.add(sent_pkt(pn, Time::zero() + Duration::millis(pn)));
  }
  RttEstimator rtt;
  rtt.update(40_ms, Duration::zero(), 25_ms);
  LossDetection ld;
  // largest acked = 5: packets 1 and 2 are >= 3 behind.
  auto result = ld.detect(map, 5, rtt, Time::zero() + 10_ms);
  ASSERT_EQ(result.lost.size(), 2u);
  EXPECT_EQ(result.lost[0].pn, 1u);
  EXPECT_EQ(result.lost[1].pn, 2u);
  EXPECT_EQ(map.size(), 3u);
}

TEST(LossDetectionTest, TimeThresholdDeclaresLoss) {
  SentPacketMap map;
  map.add(sent_pkt(1, Time::zero() + 1_ms));
  map.add(sent_pkt(2, Time::zero() + 100_ms));
  RttEstimator rtt;
  rtt.update(40_ms, Duration::zero(), 25_ms);
  LossDetection ld;
  // largest acked = 2 (pn 1 only 1 behind, below packet threshold), but
  // pn 1 was sent 9/8*40=45 ms before now -> time threshold fires.
  auto result = ld.detect(map, 2, rtt, Time::zero() + 50_ms);
  ASSERT_EQ(result.lost.size(), 1u);
  EXPECT_EQ(result.lost[0].pn, 1u);
}

TEST(LossDetectionTest, SetsNextLossTimeForYoungPackets) {
  SentPacketMap map;
  map.add(sent_pkt(1, Time::zero() + 30_ms));
  RttEstimator rtt;
  rtt.update(40_ms, Duration::zero(), 25_ms);
  LossDetection ld;
  auto result = ld.detect(map, 2, rtt, Time::zero() + 40_ms);
  EXPECT_TRUE(result.lost.empty());
  EXPECT_EQ(result.next_loss_time, Time::zero() + 75_ms);  // 30 + 45
}

TEST(LossDetectionTest, PersistentCongestionOnLongSpan) {
  SentPacketMap map;
  map.add(sent_pkt(1, Time::zero() + 10_ms));
  map.add(sent_pkt(2, Time::zero() + 800_ms));
  RttEstimator rtt;
  rtt.update(40_ms, Duration::zero(), 25_ms);  // PTO = 145 ms, 3*PTO = 435 ms
  LossDetection ld;
  auto result = ld.detect(map, 6, rtt, Time::zero() + 900_ms);
  ASSERT_EQ(result.lost.size(), 2u);
  EXPECT_TRUE(result.persistent_congestion);
}

TEST(LossDetectionTest, PtoBacksOffExponentially) {
  SentPacketMap map;
  map.add(sent_pkt(1, Time::zero()));
  RttEstimator rtt;
  rtt.update(40_ms, Duration::zero(), 25_ms);
  LossDetection ld;
  const Time pto0 = ld.pto_deadline(map, rtt, 0);
  const Time pto2 = ld.pto_deadline(map, rtt, 2);
  EXPECT_EQ((pto2 - Time::zero()).ns(), 4 * (pto0 - Time::zero()).ns());
}

// -------------------------------------------------------------- Connection

Connection::Config small_transfer(std::int64_t bytes = 50 * kPayloadPerDatagram) {
  Connection::Config cfg;
  cfg.total_payload_bytes = bytes;
  cfg.cc.algorithm = cc::CcAlgorithm::kCubic;
  return cfg;
}

std::shared_ptr<const TransportAck> ack_of(std::uint64_t first,
                                           std::uint64_t last,
                                           Duration delay = Duration::zero()) {
  auto ack = std::make_shared<TransportAck>();
  ack->blocks = {AckBlock{first, last}};
  ack->ack_delay = delay;
  return ack;
}

Packet ack_packet(std::uint64_t first, std::uint64_t last,
                  Duration delay = Duration::zero()) {
  Packet pkt;
  pkt.kind = net::PacketKind::kQuicAck;
  pkt.size_bytes = kAckPacketSize;
  pkt.ack = ack_of(first, last, delay);
  return pkt;
}

TEST(ConnectionTest, BuildsSequentialChunks) {
  Connection conn(small_transfer());
  auto p1 = conn.build_packet(Time::zero(), Time::zero());
  auto p2 = conn.build_packet(Time::zero(), Time::zero());
  EXPECT_EQ(p1.packet_number + 1, p2.packet_number);
  EXPECT_EQ(p1.stream_offset, 0);
  EXPECT_EQ(p2.stream_offset, kPayloadPerDatagram);
  EXPECT_EQ(conn.bytes_in_flight(), p1.size_bytes + p2.size_bytes);
}

TEST(ConnectionTest, CongestionBlockedAtInitialWindow) {
  Connection conn(small_transfer());
  int sent = 0;
  while (!conn.congestion_blocked() && sent < 100) {
    conn.build_packet(Time::zero(), Time::zero());
    ++sent;
  }
  EXPECT_EQ(sent, 10);  // RFC 9002 initial window = 10 datagrams
}

TEST(ConnectionTest, AckFreesWindowAndMeasuresRtt) {
  Connection conn(small_transfer());
  for (int i = 0; i < 10; ++i) conn.build_packet(Time::zero(), Time::zero());
  conn.on_ack_packet(ack_packet(1, 10), Time::zero() + 40_ms);
  EXPECT_EQ(conn.bytes_in_flight(), 0);
  EXPECT_EQ(conn.rtt().latest(), 40_ms);
  EXPECT_FALSE(conn.congestion_blocked());
}

TEST(ConnectionTest, LastChunkCarriesFin) {
  Connection conn(small_transfer(2 * kPayloadPerDatagram));
  auto p1 = conn.build_packet(Time::zero(), Time::zero());
  auto p2 = conn.build_packet(Time::zero(), Time::zero());
  EXPECT_FALSE(p1.fin);
  EXPECT_TRUE(p2.fin);
  EXPECT_FALSE(conn.has_data_to_send());
}

TEST(ConnectionTest, LossQueuesRetransmission) {
  Connection conn(small_transfer());
  for (int i = 0; i < 10; ++i) conn.build_packet(Time::zero(), Time::zero());
  // ACK 4..10, leaving 1..3 behind by more than the packet threshold.
  conn.on_ack_packet(ack_packet(4, 10), Time::zero() + 40_ms);
  EXPECT_EQ(conn.stats().packets_declared_lost, 3);
  ASSERT_TRUE(conn.has_data_to_send());
  auto retx = conn.build_packet(Time::zero() + 41_ms, Time::zero() + 41_ms);
  EXPECT_EQ(retx.stream_offset, 0);  // oldest lost chunk first
  EXPECT_GT(retx.packet_number, 10u);  // new packet number, QUIC-style
}

TEST(ConnectionTest, CompletionRequiresAllBytesAcked) {
  Connection conn(small_transfer(3 * kPayloadPerDatagram));
  conn.build_packet(Time::zero(), Time::zero());
  conn.build_packet(Time::zero(), Time::zero());
  conn.build_packet(Time::zero(), Time::zero());
  conn.on_ack_packet(ack_packet(1, 2), Time::zero() + 40_ms);
  EXPECT_FALSE(conn.transfer_complete());
  conn.on_ack_packet(ack_packet(3, 3), Time::zero() + 41_ms);
  EXPECT_TRUE(conn.transfer_complete());
  EXPECT_EQ(conn.stats().completion_time, Time::zero() + 41_ms);
}

TEST(ConnectionTest, PacingRateInfiniteBeforeFirstRttSample) {
  Connection conn(small_transfer());
  EXPECT_TRUE(conn.pacing_rate().is_infinite());
  for (int i = 0; i < 10; ++i) conn.build_packet(Time::zero(), Time::zero());
  conn.on_ack_packet(ack_packet(1, 10), Time::zero() + 40_ms);
  EXPECT_FALSE(conn.pacing_rate().is_infinite());
  // rate = 1.25 * cwnd / srtt; cwnd doubled to 30000 by the slow-start ack.
  const double expected =
      1.25 * static_cast<double>(conn.cwnd_bytes()) * 8.0 / 0.040;
  EXPECT_NEAR(conn.pacing_rate().bps(), expected, expected * 0.01);
}

TEST(ConnectionTest, PtoFiresAndProbes) {
  Connection conn(small_transfer());
  conn.build_packet(Time::zero(), Time::zero());
  const Time deadline = conn.next_timer_deadline();
  EXPECT_FALSE(deadline.is_infinite());
  conn.on_timer(deadline);
  EXPECT_EQ(conn.stats().pto_fired, 1);
  EXPECT_TRUE(conn.has_data_to_send());  // probe chunk queued
}

TEST(ConnectionTest, DuplicateAckIsIgnored) {
  Connection conn(small_transfer());
  for (int i = 0; i < 4; ++i) conn.build_packet(Time::zero(), Time::zero());
  conn.on_ack_packet(ack_packet(1, 2), Time::zero() + 40_ms);
  const auto cwnd = conn.cwnd_bytes();
  conn.on_ack_packet(ack_packet(1, 2), Time::zero() + 45_ms);
  EXPECT_EQ(conn.cwnd_bytes(), cwnd);
}

// ---------------------------------------------------- end-to-end transfer

struct Harness {
  EventLoop loop;
  // Server egress -> bottleneck link -> client; client ACKs -> return link
  // -> server. Links sized like the paper's topology (scaled RTT).
  net::Link ack_link;
  ReferenceServer server;
  net::Link data_link;
  Client client;

  class ToClient final : public net::PacketSink {
   public:
    explicit ToClient(Harness& h) : h_(h) {}
    void deliver(Packet pkt) override { h_.client.on_datagram(pkt); }
    Harness& h_;
  };
  class ToServer final : public net::PacketSink {
   public:
    explicit ToServer(Harness& h) : h_(h) {}
    void deliver(Packet pkt) override { h_.server.on_datagram(pkt); }
    Harness& h_;
  };
  ToClient to_client{*this};
  ToServer to_server{*this};

  explicit Harness(std::int64_t payload_bytes, std::int64_t buffer_bytes = -1,
                   cc::CcAlgorithm algo = cc::CcAlgorithm::kCubic)
      : ack_link(loop, {.rate = DataRate::infinite(), .delay = 20_ms},
                 &to_server),
        server(loop,
               [&] {
                 Connection::Config cfg;
                 cfg.total_payload_bytes = payload_bytes;
                 cfg.cc.algorithm = algo;
                 cfg.cc.bbr_flavor = cc::BbrFlavor::kV2Lite;
                 return cfg;
               }(),
               &data_link),
        data_link(loop,
                  {.rate = DataRate::megabits_per_second(40),
                   .delay = 20_ms,
                   .buffer_bytes = buffer_bytes},
                  &to_client),
        client(loop, {.ack = {}, .expected_payload_bytes = payload_bytes},
               &ack_link) {}
};

TEST(EndToEnd, LosslessTransferCompletes) {
  const std::int64_t payload = 200 * kPayloadPerDatagram;
  Harness h(payload);
  h.server.start();
  h.loop.run_until(Time::zero() + 30_s);
  EXPECT_TRUE(h.client.complete());
  EXPECT_TRUE(h.server.connection().transfer_complete());
  EXPECT_EQ(h.client.stats().payload_bytes_received, payload);
  EXPECT_EQ(h.server.connection().stats().packets_declared_lost, 0);
}

TEST(EndToEnd, LossyBottleneckStillCompletes) {
  const std::int64_t payload = 500 * kPayloadPerDatagram;
  // Tiny 8-packet buffer forces drops during slow start.
  Harness h(payload, 8 * kDatagramSize);
  h.server.start();
  h.loop.run_until(Time::zero() + 60_s);
  EXPECT_TRUE(h.client.complete()) << "transfer stalled";
  EXPECT_GT(h.server.connection().stats().packets_declared_lost, 0);
  // Every payload byte arrived exactly once in the interval set.
  EXPECT_EQ(h.client.received().covered_bytes(), payload);
}

TEST(EndToEnd, RttEstimateMatchesPathRtt) {
  Harness h(200 * kPayloadPerDatagram);
  h.server.start();
  h.loop.run_until(Time::zero() + 30_s);
  // 40 ms propagation + serialization; smoothed RTT must sit close above.
  EXPECT_GE(h.server.connection().rtt().min(), 40_ms);
  EXPECT_LT(h.server.connection().rtt().min(), 43_ms);
}

TEST(EndToEnd, BbrTransferCompletes) {
  const std::int64_t payload = 500 * kPayloadPerDatagram;
  Harness h(payload, 40 * kDatagramSize, cc::CcAlgorithm::kBbr);
  h.server.start();
  h.loop.run_until(Time::zero() + 60_s);
  EXPECT_TRUE(h.client.complete());
  EXPECT_TRUE(h.server.connection().controller().has_own_pacing_rate());
}

TEST(EndToEnd, NewRenoTransferCompletes) {
  const std::int64_t payload = 300 * kPayloadPerDatagram;
  Harness h(payload, 40 * kDatagramSize, cc::CcAlgorithm::kNewReno);
  h.server.start();
  h.loop.run_until(Time::zero() + 60_s);
  EXPECT_TRUE(h.client.complete());
}

}  // namespace
}  // namespace quicsteps::quic
