// Tests for the observability and impairment extensions: the qlog writer,
// connection observer hooks, netem loss/reordering, and GRO coalescing.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "framework/runner.hpp"
#include "kernel/qdisc_netem.hpp"
#include "kernel/udp_socket.hpp"
#include "quic/qlog.hpp"

namespace quicsteps {
namespace {

using namespace quicsteps::sim::literals;
using net::Packet;
using sim::Duration;
using sim::EventLoop;
using sim::Time;

// ------------------------------------------------------------------ qlog

TEST(Qlog, HeaderAndEventShapes) {
  std::ostringstream out;
  quic::QlogWriter qlog(out);
  qlog.write_header("unit");

  Packet pkt;
  pkt.packet_number = 7;
  pkt.size_bytes = 1500;
  pkt.stream_offset = 1402;
  pkt.stream_length = 1402;
  pkt.has_txtime = true;
  pkt.txtime = Time::zero() + 3_ms;
  pkt.expected_send_time = Time::zero() + 3_ms;
  qlog.on_packet_sent(Time::zero() + 2_ms, pkt);
  qlog.on_ack_processed(Time::zero() + 42_ms, 7, 1500);
  qlog.on_packets_lost(Time::zero() + 80_ms, 2, 3000);
  qlog.on_metrics(Time::zero() + 80_ms, 30000, 15000, 40_ms,
                  net::DataRate::megabits_per_second(40));

  const std::string log = out.str();
  EXPECT_NE(log.find("\"qlog_version\":\"0.4\""), std::string::npos);
  EXPECT_NE(log.find("transport:packet_sent"), std::string::npos);
  EXPECT_NE(log.find("\"packet_number\":7"), std::string::npos);
  EXPECT_NE(log.find("\"txtime_us\":3000.000"), std::string::npos);
  EXPECT_NE(log.find("recovery:packet_lost"), std::string::npos);
  EXPECT_NE(log.find("\"congestion_window\":30000"), std::string::npos);
  EXPECT_NE(log.find("\"pacing_rate\":40000000"), std::string::npos);
  EXPECT_EQ(qlog.events_written(), 4);
  // JSON-SEQ: one record per line.
  EXPECT_EQ(std::count(log.begin(), log.end(), '\n'), 5);
}

// Regression: qlog used to render times via to_millis(), erasing the
// sub-millisecond pacing signal the study is about. Every timestamp must
// carry exact microsecond (and sub-µs) digits.
TEST(Qlog, TimestampsAreMicrosecondExact) {
  std::ostringstream out;
  quic::QlogWriter qlog(out);
  qlog.write_header("unit");

  Packet pkt;
  pkt.packet_number = 1;
  pkt.size_bytes = 1200;
  pkt.has_txtime = true;
  pkt.txtime = Time::zero() + Duration::nanos(1234567);
  pkt.expected_send_time = pkt.txtime;
  qlog.on_packet_sent(Time::zero() + Duration::nanos(1230042), pkt);
  qlog.on_metrics(Time::zero() + Duration::nanos(1230042), 30000, 15000,
                  Duration::nanos(40001500),
                  net::DataRate::megabits_per_second(40));

  const std::string log = out.str();
  // Header declares the unit; events carry exact µs with three sub-µs
  // digits — no float rounding, no truncation to milliseconds.
  EXPECT_NE(log.find("\"time_unit\":\"us\""), std::string::npos);
  EXPECT_NE(log.find("\"time\":1230.042"), std::string::npos);
  EXPECT_NE(log.find("\"txtime_us\":1234.567"), std::string::npos);
  EXPECT_NE(log.find("\"intended_send_us\":1234.567"), std::string::npos);
  EXPECT_NE(log.find("\"smoothed_rtt\":40001.500"), std::string::npos);
  // The old millisecond fields must be gone.
  EXPECT_EQ(log.find("txtime_ms"), std::string::npos);
  EXPECT_EQ(log.find("intended_send_ms"), std::string::npos);
}

TEST(Qlog, ConnectionEmitsFullLifecycle) {
  std::ostringstream out;
  quic::QlogWriter qlog(out);
  quic::Connection::Config cfg;
  cfg.total_payload_bytes = 10 * quic::kPayloadPerDatagram;
  quic::Connection conn(cfg);
  conn.set_observer(&qlog);

  for (int i = 0; i < 10; ++i) {
    conn.build_packet(Time::zero(), Time::zero());
  }
  Packet ack;
  ack.kind = net::PacketKind::kQuicAck;
  auto payload = std::make_shared<net::TransportAck>();
  payload->blocks = {net::AckBlock{8, 10}};  // leaves 1..5 as losses
  ack.ack = payload;
  conn.on_ack_packet(ack, Time::zero() + 40_ms);

  const std::string log = out.str();
  EXPECT_NE(log.find("transport:packet_sent"), std::string::npos);
  EXPECT_NE(log.find("transport:packet_received"), std::string::npos);
  EXPECT_NE(log.find("recovery:packet_lost"), std::string::npos);
  EXPECT_NE(log.find("recovery:metrics_updated"), std::string::npos);
}

TEST(Qlog, RunnerWritesPerRepetitionFiles) {
  framework::ExperimentConfig config;
  config.stack = framework::StackKind::kQuicheSf;
  config.payload_bytes = 1ll * 1024 * 1024;
  config.qlog_path = "/tmp/quicsteps_qlog_test";
  auto run = framework::Runner::run_once(config, 77);
  EXPECT_TRUE(run.completed);
  std::ifstream in("/tmp/quicsteps_qlog_test.77");
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_NE(first_line.find("JSON-SEQ"), std::string::npos);
}

// ------------------------------------------------------------- impairments

TEST(NetemImpairments, RandomLossDropsTheConfiguredShare) {
  EventLoop loop;
  net::CollectorSink sink;
  kernel::NetemQdisc netem(loop, {.delay = 1_ms, .loss_probability = 0.2},
                           sim::Rng(5), &sink);
  for (int i = 0; i < 5000; ++i) {
    Packet pkt;
    pkt.id = static_cast<std::uint64_t>(i);
    pkt.size_bytes = 1500;
    netem.deliver(pkt);
  }
  loop.run();
  EXPECT_NEAR(static_cast<double>(netem.random_losses()) / 5000.0, 0.2,
              0.02);
  EXPECT_EQ(sink.packets().size() + static_cast<std::size_t>(netem.random_losses()),
            5000u);
}

TEST(NetemImpairments, ReorderJumpsTheQueue) {
  EventLoop loop;
  net::CollectorSink sink;
  kernel::NetemQdisc netem(loop,
                           {.delay = 5_ms,
                            .reorder_probability = 0.3,
                            .reorder_gap = 2_ms},
                           sim::Rng(5), &sink);
  for (int i = 0; i < 1000; ++i) {
    loop.schedule_at(Time::zero() + Duration::micros(i * 100), [&netem, i] {
      Packet pkt;
      pkt.id = static_cast<std::uint64_t>(i);
      pkt.size_bytes = 1500;
      netem.deliver(pkt);
    });
  }
  loop.run();
  ASSERT_EQ(sink.packets().size(), 1000u);
  EXPECT_GT(netem.reordered(), 200);
  // Some packets must actually arrive out of id order.
  int inversions = 0;
  for (std::size_t i = 1; i < sink.packets().size(); ++i) {
    if (sink.packets()[i].id < sink.packets()[i - 1].id) ++inversions;
  }
  EXPECT_GT(inversions, 0);
}

TEST(Gro, CoalescesArrivalsIntoOneWakeup) {
  EventLoop loop;
  kernel::OsTimingConfig quiet;
  quiet.wakeup_latency_mean = Duration::zero();
  quiet.wakeup_latency_stddev = Duration::zero();
  kernel::OsModel os(quiet, sim::Rng(2));
  int delivered = 0;
  kernel::UdpReceiver receiver(loop, os, 1 << 20,
                               [&](Packet) { ++delivered; }, 500_us);
  for (int i = 0; i < 8; ++i) {
    Packet pkt;
    pkt.size_bytes = 1500;
    receiver.deliver(pkt);
  }
  loop.run();
  EXPECT_EQ(delivered, 8);
  EXPECT_EQ(receiver.wakeups(), 1);  // one batch, one recvmsg
}

TEST(Gro, SeparatedArrivalsAreSeparateWakeups) {
  EventLoop loop;
  kernel::OsTimingConfig quiet;
  quiet.wakeup_latency_mean = Duration::zero();
  quiet.wakeup_latency_stddev = Duration::zero();
  kernel::OsModel os(quiet, sim::Rng(2));
  int delivered = 0;
  kernel::UdpReceiver receiver(loop, os, 1 << 20,
                               [&](Packet) { ++delivered; }, 500_us);
  for (int i = 0; i < 4; ++i) {
    loop.schedule_at(Time::zero() + Duration::millis(i * 10), [&receiver] {
      Packet pkt;
      pkt.size_bytes = 1500;
      receiver.deliver(pkt);
    });
  }
  loop.run();
  EXPECT_EQ(delivered, 4);
  EXPECT_EQ(receiver.wakeups(), 4);
}

TEST(Impairments, LossyPathTransferStillCompletes) {
  framework::ExperimentConfig config;
  config.stack = framework::StackKind::kQuicheSf;
  config.topology.server_qdisc = framework::QdiscKind::kFq;
  config.topology.path_loss_probability = 0.002;
  config.payload_bytes = 2ll * 1024 * 1024;
  auto run = framework::Runner::run_once(config, 19);
  EXPECT_TRUE(run.completed);
  EXPECT_GT(run.packets_declared_lost, 0);
}

}  // namespace
}  // namespace quicsteps
